/**
 * @file
 * Tests for the adaptive reclamation governor (DESIGN.md §13), all
 * driven under a virtual clock: probe values are injected through a
 * test probe, Monitor::sample_at() stamps them, and
 * ReclamationGovernor::evaluate_at() runs the control loop at exact
 * timestamps — no sleeps, no background threads.
 *
 * Covered: hysteresis (one fire per excursion), for_at_least holds,
 * cooldown/re-arm, priority between conflicting schemes, held-action
 * idempotence and retry-on-refusal, relax-to-nominal, the
 * kGovernorAction fault site, the governor-vs-OOM-ladder handoff
 * (ladder still reports when schemes are disabled), and the actuator
 * substrate (manual-domain expedite consumption, latent-ring
 * admission limits, allocator reclaim_ready()).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/prudence_allocator.h"
#include "fault/fault_injector.h"
#include "governor/governor.h"
#include "rcu/manual_domain.h"
#include "slab/latent_ring.h"
#include "telemetry/monitor.h"

namespace prudence::governor {
namespace {

using std::chrono::milliseconds;

constexpr std::uint64_t kMs = 1'000'000;  // ns per ms

/// Records every actuation; can refuse the next N dispatches.
struct RecordingActuators : Actuators
{
    struct Pace
    {
        unsigned level;
        std::size_t batch;
    };
    std::vector<Pace> paces;
    std::vector<unsigned> admissions;
    std::vector<std::size_t> trims;
    std::vector<std::size_t> depot_trims;
    /// Poll-safe progress signal for threaded tests: the vectors
    /// above may only be read after gov->stop() joins the loop.
    std::atomic<std::size_t> pace_count{0};
    int depot_harvests = 0;
    int reclaims = 0;
    int refuse_remaining = 0;

    bool
    refuse()
    {
        if (refuse_remaining > 0) {
            --refuse_remaining;
            return true;
        }
        return false;
    }

    bool
    pace_gp(unsigned level, std::size_t batch) override
    {
        if (refuse())
            return false;
        paces.push_back({level, batch});
        pace_count.fetch_add(1, std::memory_order_release);
        return true;
    }
    bool
    shrink_latent(unsigned pct) override
    {
        if (refuse())
            return false;
        admissions.push_back(pct);
        return true;
    }
    bool
    trim_pcp(std::size_t keep) override
    {
        if (refuse())
            return false;
        trims.push_back(keep);
        return true;
    }
    bool
    trim_depot(std::size_t keep_blocks) override
    {
        if (refuse())
            return false;
        depot_trims.push_back(keep_blocks);
        return true;
    }
    bool
    harvest_depot() override
    {
        if (refuse())
            return false;
        ++depot_harvests;
        return true;
    }
    bool
    reclaim() override
    {
        if (refuse())
            return false;
        ++reclaims;
        return true;
    }
};

#if defined(PRUDENCE_GOVERNOR_ENABLED)

/// Monitor + injectable probe + governor under a virtual clock.
struct Harness
{
    telemetry::Monitor monitor;
    std::atomic<std::uint64_t> value{0};
    RecordingActuators acts;
    std::unique_ptr<ReclamationGovernor> gov;

    explicit Harness(std::vector<Scheme> schemes,
                     milliseconds ladder_hold = milliseconds{100})
    {
        monitor.add_probe("gov.signal", "units",
                          [this] { return value.load(); });
        GovernorConfig cfg;
        cfg.ladder_hold = ladder_hold;
        cfg.schemes = std::move(schemes);
        gov = std::make_unique<ReclamationGovernor>(monitor, acts,
                                                    std::move(cfg));
    }

    /// Set the probe, sample it and evaluate, all at @p t_ns.
    void
    step(std::uint64_t v, std::uint64_t t_ns)
    {
        value.store(v);
        monitor.sample_at(t_ns);
        gov->evaluate_at(t_ns);
    }

    std::uint64_t
    fires(std::size_t scheme = 0) const
    {
        return gov->schemes().at(scheme).fires;
    }
};

Scheme
above_signal(std::uint64_t threshold, std::uint64_t rearm = 0)
{
    Scheme s;
    s.name = "test_scheme";
    s.probe = "gov.signal";
    s.cmp = Scheme::Cmp::kAbove;
    s.threshold = threshold;
    s.rearm = rearm;
    s.action = ActionId::kExpediteGp;
    s.arg = 2;
    s.level = PressureLevel::kElevated;
    return s;
}

// ---------------------------------------------------------------------
// Scheme state machine: hysteresis, hold, cooldown.
// ---------------------------------------------------------------------

TEST(GovernorScheme, FiresOncePerExcursionWithHysteresis)
{
    // threshold 100, rearm 50: the scheme must stay active (without
    // re-firing) anywhere in the dead band (50, 100], and deactivate
    // only at or below 50.
    Harness h({above_signal(100, 50)});
    h.step(120, 1 * kMs);
    EXPECT_EQ(h.fires(), 1u);
    EXPECT_EQ(h.gov->level(), PressureLevel::kElevated);

    h.step(80, 2 * kMs);  // inside the dead band: still active
    EXPECT_EQ(h.fires(), 1u);
    EXPECT_EQ(h.gov->level(), PressureLevel::kElevated);

    h.step(120, 3 * kMs);  // re-breach while active: no re-fire
    EXPECT_EQ(h.fires(), 1u);

    h.step(40, 4 * kMs);  // below rearm: excursion over
    EXPECT_EQ(h.gov->level(), PressureLevel::kNominal);

    h.step(120, 5 * kMs);  // next excursion fires again
    EXPECT_EQ(h.fires(), 2u);
}

TEST(GovernorScheme, ForAtLeastDelaysTheFire)
{
    Scheme s = above_signal(100);
    s.for_at_least = milliseconds{10};
    Harness h({s});

    h.step(120, 0);
    EXPECT_EQ(h.fires(), 0u) << "fired before the hold elapsed";
    h.step(120, 5 * kMs);
    EXPECT_EQ(h.fires(), 0u);
    h.step(120, 10 * kMs);
    EXPECT_EQ(h.fires(), 1u) << "hold met, must fire";
}

TEST(GovernorScheme, BreachDipResetsTheHold)
{
    Scheme s = above_signal(100);
    s.for_at_least = milliseconds{10};
    Harness h({s});

    h.step(120, 0);
    h.step(50, 5 * kMs);  // dip: pending resets
    h.step(120, 10 * kMs);
    EXPECT_EQ(h.fires(), 0u) << "hold must restart after a dip";
    h.step(120, 20 * kMs);
    EXPECT_EQ(h.fires(), 1u);
}

TEST(GovernorScheme, CooldownBlocksImmediateRefire)
{
    Scheme s = above_signal(100, 50);
    s.cooldown = milliseconds{100};
    Harness h({s});

    h.step(120, 0);  // fire #1
    EXPECT_EQ(h.fires(), 1u);
    h.step(40, 10 * kMs);   // deactivate
    h.step(120, 50 * kMs);  // breach inside the cooldown
    EXPECT_EQ(h.fires(), 1u) << "re-fired inside the cooldown";
    h.step(120, 150 * kMs);  // cooldown elapsed, still breaching
    EXPECT_EQ(h.fires(), 2u);
}

// ---------------------------------------------------------------------
// Priority and actuation.
// ---------------------------------------------------------------------

TEST(GovernorScheme, HigherPriorityWinsConflictingActuator)
{
    Scheme weak = above_signal(100, 50);
    weak.name = "weak";
    weak.priority = 1;
    weak.arg = 1;
    Scheme strong = above_signal(200, 150);
    strong.name = "strong";
    strong.priority = 5;
    strong.arg = 3;
    Harness h({weak, strong});

    h.step(120, 0);  // only weak breaches
    ASSERT_EQ(h.acts.paces.size(), 1u);
    EXPECT_EQ(h.acts.paces.back().level, 1u);

    h.step(250, 1 * kMs);  // both active: strong wins
    ASSERT_EQ(h.acts.paces.size(), 2u);
    EXPECT_EQ(h.acts.paces.back().level, 3u);

    h.step(120, 2 * kMs);  // strong rearms (<=150): weak holds again
    ASSERT_EQ(h.acts.paces.size(), 3u);
    EXPECT_EQ(h.acts.paces.back().level, 1u);
}

TEST(GovernorActuation, HeldStateDispatchesOnlyOnChange)
{
    Harness h({above_signal(100, 50)});
    for (int i = 0; i < 5; ++i)
        h.step(120, static_cast<std::uint64_t>(i) * kMs);
    EXPECT_EQ(h.acts.paces.size(), 1u)
        << "unchanged held state must not re-dispatch";
    EXPECT_EQ(h.acts.paces[0].level, 2u);

    // Deactivation relaxes to nominal exactly once.
    for (int i = 5; i < 10; ++i)
        h.step(10, static_cast<std::uint64_t>(i) * kMs);
    ASSERT_EQ(h.acts.paces.size(), 2u);
    EXPECT_EQ(h.acts.paces.back().level, 0u);
    EXPECT_EQ(h.acts.paces.back().batch, 0u);
}

TEST(GovernorActuation, RefusedDispatchIsRetriedNextRound)
{
    Harness h({above_signal(100, 50)});
    h.acts.refuse_remaining = 1;
    h.step(120, 0);  // refused: applied state must not advance
    EXPECT_TRUE(h.acts.paces.empty());
    EXPECT_EQ(h.gov->stats().refusals, 1u);
    EXPECT_EQ(h.gov->schemes().at(0).refusals, 1u);

    h.step(120, 1 * kMs);  // same desired state: retried, applied
    ASSERT_EQ(h.acts.paces.size(), 1u);
    EXPECT_EQ(h.acts.paces[0].level, 2u);
    EXPECT_EQ(h.gov->schemes().at(0).effects, 1u);
}

TEST(GovernorActuation, EdgeActionsFireOncePerExcursion)
{
    Scheme trim = above_signal(100, 50);
    trim.name = "trim";
    trim.action = ActionId::kTrimPcp;
    trim.arg = 1;
    Scheme reclaim = above_signal(100, 50);
    reclaim.name = "reclaim";
    reclaim.action = ActionId::kReclaim;
    Harness h({trim, reclaim});

    for (int i = 0; i < 4; ++i)
        h.step(120, static_cast<std::uint64_t>(i) * kMs);
    EXPECT_EQ(h.acts.trims.size(), 1u);
    EXPECT_EQ(h.acts.reclaims, 1);

    h.step(10, 10 * kMs);   // excursion ends
    h.step(120, 20 * kMs);  // next excursion: edges fire again
    EXPECT_EQ(h.acts.trims.size(), 2u);
    EXPECT_EQ(h.acts.reclaims, 2);
}

TEST(GovernorActuation, TrimDepotFiresOncePerExcursionWithArg)
{
    Scheme s = above_signal(100, 50);
    s.name = "trim_depot";
    s.action = ActionId::kTrimDepot;
    s.arg = 4;
    Harness h({s});

    for (int i = 0; i < 3; ++i)
        h.step(120, static_cast<std::uint64_t>(i) * kMs);
    ASSERT_EQ(h.acts.depot_trims.size(), 1u) << "edge action re-fired";
    EXPECT_EQ(h.acts.depot_trims.front(), 4u);

    h.step(10, 10 * kMs);   // excursion ends
    h.step(120, 20 * kMs);  // next excursion fires again
    EXPECT_EQ(h.acts.depot_trims.size(), 2u);
}

TEST(GovernorActuation, ShrinkLatentHoldsAdmissionWhileActive)
{
    Scheme s = above_signal(100, 50);
    s.action = ActionId::kShrinkLatent;
    s.arg = 40;
    Harness h({s});

    h.step(120, 0);
    ASSERT_EQ(h.acts.admissions.size(), 1u);
    EXPECT_EQ(h.acts.admissions[0], 40u);
    h.step(120, 1 * kMs);
    EXPECT_EQ(h.acts.admissions.size(), 1u) << "idempotent while held";
    h.step(10, 2 * kMs);  // relax back to nominal
    ASSERT_EQ(h.acts.admissions.size(), 2u);
    EXPECT_EQ(h.acts.admissions.back(), 100u);
}

#if defined(PRUDENCE_FAULT_ENABLED)
TEST(GovernorActuation, FaultSiteRefusesAndRecoveryReapplies)
{
    auto& injector = fault::FaultInjector::instance();
    injector.reset(0x60Fu);
    fault::SitePolicy policy;
    policy.probability = 1.0;
    injector.arm(fault::SiteId::kGovernorAction, policy);

    Harness h({above_signal(100, 50)});
    h.step(120, 0);
    EXPECT_TRUE(h.acts.paces.empty())
        << "armed fault site must refuse the dispatch";
    EXPECT_GE(h.gov->stats().refusals, 1u);

    injector.disarm(fault::SiteId::kGovernorAction);
    h.step(120, 1 * kMs);  // stuck actuation retried once unstuck
    ASSERT_EQ(h.acts.paces.size(), 1u);
    EXPECT_EQ(h.acts.paces[0].level, 2u);
    injector.reset(0);
}
#endif  // PRUDENCE_FAULT_ENABLED

// ---------------------------------------------------------------------
// The OOM-ladder handoff (one escalation story).
// ---------------------------------------------------------------------

TEST(GovernorLadder, NoteEntersAndHoldsTerminalLevel)
{
    Harness h({above_signal(100, 50)}, milliseconds{100});
    h.gov->note_oom_ladder(2);
    h.step(10, 0);  // probe nominal; the ladder note still escalates
    EXPECT_EQ(h.gov->level(), PressureLevel::kOomLadder);
    EXPECT_EQ(h.gov->max_ladder_rung(), 2);
    // Terminal actuation: max expedite + floor admission + reclaim.
    ASSERT_FALSE(h.acts.paces.empty());
    EXPECT_EQ(h.acts.paces.back().level,
              GracePeriodDomain::kMaxExpediteLevel);
    ASSERT_FALSE(h.acts.admissions.empty());
    EXPECT_EQ(h.acts.admissions.back(), 0u);
    EXPECT_GE(h.acts.reclaims, 1);

    h.step(10, 50 * kMs);  // inside the hold
    EXPECT_EQ(h.gov->level(), PressureLevel::kOomLadder);

    h.step(10, 150 * kMs);  // hold expired: relax to nominal
    EXPECT_EQ(h.gov->level(), PressureLevel::kNominal);
    EXPECT_EQ(h.acts.paces.back().level, 0u);
    EXPECT_EQ(h.acts.admissions.back(), 100u);
}

TEST(GovernorLadder, HandoffWorksWithSchemesDisabled)
{
    // The handoff contract: with every scheme disabled the governor
    // does nothing on its own, but the allocator's ladder still fires
    // and its note still escalates the governor to the terminal
    // level. The ladder never depends on the governor.
    Harness h({above_signal(100, 50)}, milliseconds{100});
    h.gov->set_schemes_enabled(false);

    h.step(500, 0);  // way past threshold: disabled schemes stay off
    EXPECT_EQ(h.fires(), 0u);
    EXPECT_EQ(h.gov->level(), PressureLevel::kNominal);
    EXPECT_TRUE(h.acts.paces.empty());

    h.gov->note_oom_ladder(1);
    h.step(500, 1 * kMs);
    EXPECT_EQ(h.gov->level(), PressureLevel::kOomLadder);
    h.step(500, 200 * kMs);
    EXPECT_EQ(h.gov->level(), PressureLevel::kNominal);
}

TEST(GovernorLadder, AllocatorPressureListenerReachesGovernor)
{
    // End-to-end: a real Prudence OOM walks the ladder, the pressure
    // listener forwards the rung, and the next evaluation holds the
    // terminal level.
    ManualRcuDomain domain;
    PrudenceConfig cfg;
    cfg.arena_bytes = 1 << 20;
    cfg.cpus = 1;
    cfg.maintenance_interval = std::chrono::microseconds{0};
    PrudenceAllocator alloc(domain, cfg);

    Harness h({}, milliseconds{100});
    alloc.set_pressure_listener(
        [&h](int rung) { h.gov->note_oom_ladder(rung); });

    CacheId id = alloc.create_cache("gov_oom", 4096);
    std::vector<void*> objs;
    for (;;) {
        void* p = alloc.cache_alloc(id);
        if (p == nullptr)
            break;
        objs.push_back(p);
    }
    EXPECT_GE(h.gov->max_ladder_rung(), 1)
        << "exhaustion must walk the ladder through the listener";
    h.step(0, 0);
    EXPECT_EQ(h.gov->level(), PressureLevel::kOomLadder);
    for (void* p : objs)
        alloc.cache_free(id, p);
}

// ---------------------------------------------------------------------
// Scheme plumbing details.
// ---------------------------------------------------------------------

TEST(GovernorScheme, UnknownProbeNeverFires)
{
    Scheme s = above_signal(100);
    s.probe = "no.such.probe";
    Harness h({s});
    h.step(500, 0);
    EXPECT_EQ(h.fires(), 0u);
    EXPECT_EQ(h.gov->level(), PressureLevel::kNominal);
}

TEST(GovernorScheme, DisabledSchemeNeverFires)
{
    Scheme s = above_signal(100);
    s.enabled = false;
    Harness h({s});
    h.step(500, 0);
    EXPECT_EQ(h.fires(), 0u);
}

TEST(GovernorScheme, BelowComparatorAndLevelEscalation)
{
    Scheme s = above_signal(0);
    s.cmp = Scheme::Cmp::kBelow;
    s.threshold = 100;
    s.rearm = 200;  // deactivate only once the value recovers to 200
    s.level = PressureLevel::kCritical;
    s.action = ActionId::kShrinkLatent;
    s.arg = 50;
    Harness h({s});

    h.step(50, 0);
    EXPECT_EQ(h.fires(), 1u);
    EXPECT_EQ(h.gov->level(), PressureLevel::kCritical);
    h.step(150, 1 * kMs);  // between threshold and rearm: active
    EXPECT_EQ(h.gov->level(), PressureLevel::kCritical);
    h.step(250, 2 * kMs);  // recovered
    EXPECT_EQ(h.gov->level(), PressureLevel::kNominal);
}

TEST(GovernorConfigTest, DefaultSchemesCoverTheStockRules)
{
    DefaultSchemeTuning tuning;
    tuning.prefix = "p.";
    auto schemes = default_schemes(tuning);
    ASSERT_EQ(schemes.size(), 6u);
    EXPECT_EQ(schemes[0].probe, "p.alloc.latent_bytes");
    EXPECT_EQ(schemes[0].action, ActionId::kExpediteGp);
    EXPECT_EQ(schemes[1].probe, "p.age.deferred_p99_ns");
    EXPECT_EQ(schemes[1].action, ActionId::kWidenCbBatch);
    EXPECT_EQ(schemes[2].probe, "p.buddy.low_order_headroom_pages");
    EXPECT_EQ(schemes[2].action, ActionId::kShrinkLatent);
    EXPECT_EQ(schemes[3].action, ActionId::kTrimPcp);
    EXPECT_EQ(schemes[4].probe, "p.alloc.depot_full_objects");
    EXPECT_EQ(schemes[4].action, ActionId::kTrimDepot);
    EXPECT_EQ(schemes[5].probe, "p.alloc.depot_full_objects");
    EXPECT_EQ(schemes[5].cmp, Scheme::Cmp::kBelow);
    EXPECT_EQ(schemes[5].action, ActionId::kHarvestDepot);
    for (const Scheme& s : schemes) {
        EXPECT_TRUE(s.enabled);
        EXPECT_GT(s.rearm, 0u);
    }
}

TEST(GovernorThread, StartStopRelaxesActuation)
{
    Harness h({above_signal(100, 50)});
    h.value.store(120);
    h.monitor.sample_at(0);
    h.gov->start();
    // The background loop evaluates at least once promptly. Poll the
    // atomic counter; the vectors are safe to read only after stop()
    // joins the loop thread.
    for (int i = 0; i < 200 && h.acts.pace_count.load() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    h.gov->stop();
    ASSERT_FALSE(h.acts.paces.empty());
    EXPECT_EQ(h.acts.paces.front().level, 2u);
    // stop() must leave the system nominal.
    EXPECT_EQ(h.acts.paces.back().level, 0u);
}

#else  // !PRUDENCE_GOVERNOR_ENABLED

TEST(GovernorStub, CompiledOutLayerIsInert)
{
    // With PRUDENCE_GOVERNOR=OFF the stub must accept the whole API
    // and do nothing: no dispatches, no level changes, no schemes.
    telemetry::Monitor monitor;
    RecordingActuators acts;
    GovernorConfig cfg;
    ReclamationGovernor gov(monitor, acts, cfg);
    gov.start();
    gov.evaluate_once();
    gov.evaluate_at(123);
    gov.set_schemes_enabled(false);
    gov.note_oom_ladder(2);
    gov.stop();
    EXPECT_EQ(gov.level(), PressureLevel::kNominal);
    EXPECT_EQ(gov.max_ladder_rung(), 2) << "rung report stays usable";
    EXPECT_TRUE(gov.schemes().empty());
    EXPECT_EQ(gov.stats().evaluations, 0u);
    EXPECT_TRUE(acts.paces.empty());
    EXPECT_TRUE(default_schemes(DefaultSchemeTuning{}).empty());
}

#endif  // PRUDENCE_GOVERNOR_ENABLED

// ---------------------------------------------------------------------
// Actuator substrate (compiled in every configuration).
// ---------------------------------------------------------------------

TEST(GovernorSubstrate, ManualDomainConsumesExpediteAsAdvance)
{
    ManualRcuDomain domain;
    const auto before = domain.completed_epoch();
    domain.set_pacing(/*expedite_level=*/2, /*batch_limit=*/0);
    EXPECT_GT(domain.completed_epoch(), before)
        << "an expedite request IS the grace period for manual epochs";
    EXPECT_EQ(domain.expedite_level(), 2u);
    domain.set_pacing(0, 0);
    EXPECT_EQ(domain.expedite_level(), 0u);
}

TEST(GovernorSubstrate, PacingLevelIsClamped)
{
    ManualRcuDomain domain;
    domain.set_pacing(99, 7);
    EXPECT_EQ(domain.expedite_level(),
              GracePeriodDomain::kMaxExpediteLevel);
    EXPECT_EQ(domain.paced_batch_limit(), 7u);
}

TEST(GovernorSubstrate, LatentRingAdmissionLimit)
{
    LatentRing ring(8);
    EXPECT_EQ(ring.limit(), 8u);
    ring.set_limit(20);
    EXPECT_EQ(ring.limit(), 8u) << "limit clamps to capacity";
    ring.set_limit(0);
    EXPECT_EQ(ring.limit(), 1u) << "limit clamps to 1";

    ring.set_limit(2);
    EXPECT_FALSE(ring.at_limit());
    ring.push(reinterpret_cast<void*>(0x10), 1);
    EXPECT_FALSE(ring.at_limit());
    ring.push(reinterpret_cast<void*>(0x20), 1);
    EXPECT_TRUE(ring.at_limit()) << "admission boundary reached";
    EXPECT_FALSE(ring.full()) << "storage is not exhausted";
}

TEST(GovernorSubstrate, PrudenceAdmissionAndReclaimReady)
{
    ManualRcuDomain domain;
    PrudenceConfig cfg;
    cfg.arena_bytes = 16 << 20;
    cfg.cpus = 1;
    cfg.maintenance_interval = std::chrono::microseconds{0};
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("gov_adm", 256);

    alloc.set_deferred_admission(50);
    EXPECT_EQ(alloc.deferred_admission(), 50u);
    alloc.set_deferred_admission(0);
    EXPECT_EQ(alloc.deferred_admission(),
              cfg.latent_admission_floor_pct)
        << "admission clamps to the configured floor";

    // Defer, advance the epoch, then reclaim_ready() must merge the
    // now-safe objects without blocking on a new grace period.
    std::vector<void*> objs;
    for (int i = 0; i < 32; ++i)
        objs.push_back(alloc.cache_alloc(id));
    for (void* p : objs)
        alloc.cache_free_deferred(id, p);
    domain.advance();
    EXPECT_GT(alloc.reclaim_ready(), 0u);
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 0u);

    // quiesce() resets admission to nominal.
    alloc.quiesce();
    EXPECT_EQ(alloc.deferred_admission(), 100u);
}

TEST(GovernorSubstrate, AllocatorActuatorsDriveTheRealSurfaces)
{
    ManualRcuDomain domain;
    PrudenceConfig cfg;
    cfg.arena_bytes = 16 << 20;
    cfg.cpus = 1;
    cfg.maintenance_interval = std::chrono::microseconds{0};
    PrudenceAllocator alloc(domain, cfg);

    AllocatorActuators acts(domain, alloc);
    EXPECT_TRUE(acts.pace_gp(1, 64));
#if defined(PRUDENCE_GOVERNOR_ENABLED)
    EXPECT_EQ(domain.expedite_level(), 1u);
    EXPECT_EQ(domain.paced_batch_limit(), 64u);
    EXPECT_TRUE(acts.shrink_latent(50));
    EXPECT_EQ(alloc.deferred_admission(), 50u);
#endif
    EXPECT_TRUE(acts.trim_pcp(0));
    EXPECT_TRUE(acts.trim_depot(0));
    EXPECT_TRUE(acts.reclaim());
}

}  // namespace
}  // namespace prudence::governor

/**
 * @file
 * Scenario DSL parser suite (DESIGN.md §15): valid specs, `base`
 * inheritance, hard parse errors with line numbers, every field's
 * clamp rule, canonical round-trips, and a golden spec file pinned
 * byte for byte.
 *
 * Also covers the pure load-shape functions the parser feeds:
 * offered_rate_rps envelope arithmetic, Zipf skew, and the per-class
 * request mixes.
 *
 * Regenerate the golden serialization after an INTENTIONAL format
 * change with:
 *   PRUDENCE_UPDATE_GOLDEN=1 ./tests/test_scenario
 * then review the golden diff like any other code change.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "workload/loadgen.h"
#include "workload/scenario.h"

namespace prudence {
namespace {

ScenarioParseResult
parse_ok(const std::string& text)
{
    ScenarioParseResult r = parse_scenario(text);
    EXPECT_TRUE(r.ok) << r.error << "\nfor input:\n" << text;
    return r;
}

void
expect_error(const std::string& text, int line,
             const std::string& needle)
{
    ScenarioParseResult r = parse_scenario(text);
    EXPECT_FALSE(r.ok) << "expected a parse error for:\n" << text;
    const std::string prefix = "line " + std::to_string(line) + ":";
    EXPECT_EQ(r.error.rfind(prefix, 0), 0u)
        << "error `" << r.error << "` should start with `" << prefix
        << "`";
    EXPECT_NE(r.error.find(needle), std::string::npos)
        << "error `" << r.error << "` should mention `" << needle
        << "`";
}

// ---------------------------------------------------------------
// Valid input and defaults
// ---------------------------------------------------------------

TEST(ScenarioParse, EmptyInputYieldsDefaults)
{
    ScenarioParseResult r = parse_ok("");
    EXPECT_TRUE(r.clamped.empty());
    EXPECT_EQ(r.spec, ScenarioSpec{});
}

TEST(ScenarioParse, CommentsBlanksAndWhitespaceAreTolerated)
{
    ScenarioParseResult r = parse_ok(
        "# a full-line comment\n"
        "\n"
        "   rate_rps =  1234.5   # trailing comment\n"
        "\tshards\t=\t8\n"
        "name=spacey  \n");
    EXPECT_DOUBLE_EQ(r.spec.rate_rps, 1234.5);
    EXPECT_EQ(r.spec.shards, 8u);
    EXPECT_EQ(r.spec.name, "spacey");
    EXPECT_TRUE(r.clamped.empty());
}

TEST(ScenarioParse, EveryFieldParses)
{
    ScenarioParseResult r = parse_ok(
        "name = full-spec_1.0\n"
        "arrival = uniform\n"
        "rate_rps = 2500\n"
        "burst_factor = 4\n"
        "burst_period_ms = 100\n"
        "burst_len_ms = 10\n"
        "diurnal_period_ms = 500\n"
        "diurnal_amplitude = 0.25\n"
        "duration_ms = 750\n"
        "shards = 3\n"
        "connections = 17\n"
        "keys = 333\n"
        "zipf_s = 1.25\n"
        "read_pct = 50\n"
        "update_pct = 30\n"
        "alloc_heavy_shards = 1\n"
        "defer_heavy_shards = 1\n"
        "object_bytes = 256\n"
        "request_bytes = 64\n"
        "seed = 0xdeadbeef\n");
    EXPECT_TRUE(r.clamped.empty());
    const ScenarioSpec& s = r.spec;
    EXPECT_EQ(s.name, "full-spec_1.0");
    EXPECT_EQ(s.arrival, ArrivalKind::kUniform);
    EXPECT_DOUBLE_EQ(s.rate_rps, 2500.0);
    EXPECT_DOUBLE_EQ(s.burst_factor, 4.0);
    EXPECT_EQ(s.burst_period_ms, 100u);
    EXPECT_EQ(s.burst_len_ms, 10u);
    EXPECT_EQ(s.diurnal_period_ms, 500u);
    EXPECT_DOUBLE_EQ(s.diurnal_amplitude, 0.25);
    EXPECT_EQ(s.duration_ms, 750u);
    EXPECT_EQ(s.shards, 3u);
    EXPECT_EQ(s.connections, 17u);
    EXPECT_EQ(s.keys, 333u);
    EXPECT_DOUBLE_EQ(s.zipf_s, 1.25);
    EXPECT_EQ(s.read_pct, 50u);
    EXPECT_EQ(s.update_pct, 30u);
    EXPECT_EQ(s.alloc_heavy_shards, 1u);
    EXPECT_EQ(s.defer_heavy_shards, 1u);
    EXPECT_EQ(s.object_bytes, 256u);
    EXPECT_EQ(s.request_bytes, 64u);
    EXPECT_EQ(s.seed, 0xdeadbeefULL);
}

TEST(ScenarioParse, StockScenariosLoadAndAreAlreadyClamped)
{
    std::vector<std::string> names = stock_scenario_names();
    ASSERT_EQ(names.size(), 3u);
    for (const std::string& name : names) {
        ScenarioSpec s;
        ASSERT_TRUE(stock_scenario(name, s)) << name;
        EXPECT_EQ(s.name, name);
        // A stock spec must survive clamping untouched.
        std::vector<std::string> notes;
        ScenarioSpec clamped = s;
        clamp_scenario(clamped, &notes);
        EXPECT_TRUE(notes.empty())
            << name << ": " << (notes.empty() ? "" : notes.front());
        EXPECT_EQ(clamped, s) << name;
    }
    ScenarioSpec s;
    EXPECT_FALSE(stock_scenario("no-such-scenario", s));
}

// ---------------------------------------------------------------
// `base =` inheritance
// ---------------------------------------------------------------

TEST(ScenarioParse, BaseInheritsStockDefaults)
{
    ScenarioSpec burst;
    ASSERT_TRUE(stock_scenario("burst", burst));

    ScenarioParseResult r = parse_ok(
        "base = burst\n"
        "name = burst_hotter\n"
        "zipf_s = 1.4\n");
    // Overridden fields take the new values...
    EXPECT_EQ(r.spec.name, "burst_hotter");
    EXPECT_DOUBLE_EQ(r.spec.zipf_s, 1.4);
    // ...every other field keeps the stock value.
    ScenarioSpec expect = burst;
    expect.name = "burst_hotter";
    expect.zipf_s = 1.4;
    EXPECT_EQ(r.spec, expect);
}

TEST(ScenarioParse, BaseMustPrecedeEveryOtherField)
{
    expect_error("rate_rps = 100\nbase = burst\n", 2,
                 "`base` must precede");
}

TEST(ScenarioParse, UnknownBaseIsAnError)
{
    expect_error("base = rushhour\n", 1, "unknown base scenario");
}

TEST(ScenarioParse, CommentsBeforeBaseAreFine)
{
    ScenarioParseResult r = parse_ok(
        "# pick a foundation\n"
        "\n"
        "base = churn\n");
    EXPECT_EQ(r.spec.name, "churn");
    EXPECT_EQ(r.spec.alloc_heavy_shards, 2u);
}

// ---------------------------------------------------------------
// Hard errors, each with its line number
// ---------------------------------------------------------------

TEST(ScenarioParse, MalformedLineWithoutEquals)
{
    expect_error("rate_rps 100\n", 1, "expected `key = value`");
    expect_error("# fine\nshards = 2\njunk\n", 3,
                 "expected `key = value`");
}

TEST(ScenarioParse, MissingKeyOrValue)
{
    expect_error("= 100\n", 1, "missing key");
    expect_error("rate_rps =\n", 1, "missing value");
    expect_error("rate_rps = # only a comment\n", 1, "missing value");
}

TEST(ScenarioParse, UnknownKey)
{
    expect_error("rate = 100\n", 1, "unknown key `rate`");
}

TEST(ScenarioParse, MalformedNumbers)
{
    // Double-typed field.
    expect_error("rate_rps = fast\n", 1,
                 "invalid number for `rate_rps`");
    expect_error("zipf_s = 1.2.3\n", 1, "invalid number for `zipf_s`");
    // Integer-typed field: trailing junk and unit suffixes are
    // errors, not silently truncated prefixes.
    expect_error("duration_ms = 2s\n", 1,
                 "invalid number for `duration_ms`");
    expect_error("shards = four\n", 1, "invalid number for `shards`");
    // Seed is unsigned: a sign is malformed, not a wraparound.
    expect_error("seed = -1\n", 1, "invalid number for `seed`");
}

TEST(ScenarioParse, InvalidNameAndArrival)
{
    expect_error("name = has space\n", 1, "invalid name");
    expect_error("name = semi;colon\n", 1, "invalid name");
    expect_error("arrival = bursty\n", 1, "unknown arrival kind");
}

// ---------------------------------------------------------------
// Clamp rules: one case per field bound
// ---------------------------------------------------------------

struct ClampCase
{
    const char* line;    ///< single assignment driving the clamp
    const char* field;   ///< field named in the note
    double expect_from;  ///< value as given
    double expect_to;    ///< value after clamping
};

class ScenarioClamp : public ::testing::TestWithParam<ClampCase>
{};

TEST_P(ScenarioClamp, NotesAndAppliesTheBound)
{
    const ClampCase& c = GetParam();
    ScenarioParseResult r = parse_ok(c.line);
    ASSERT_FALSE(r.clamped.empty()) << c.line;
    std::ostringstream want;
    want << c.field << ": " << c.expect_from << " clamped to "
         << c.expect_to;
    bool found = false;
    for (const std::string& note : r.clamped)
        found = found || note == want.str();
    EXPECT_TRUE(found) << "no note `" << want.str() << "` for `"
                       << c.line << "`; got: " << r.clamped.front();
}

INSTANTIATE_TEST_SUITE_P(
    EveryFieldBound, ScenarioClamp,
    ::testing::Values(
        ClampCase{"rate_rps = 0.5\n", "rate_rps", 0.5, 1},
        ClampCase{"rate_rps = 1e9\n", "rate_rps", 1e9, 5e7},
        ClampCase{"burst_factor = 0.25\n", "burst_factor", 0.25, 1},
        ClampCase{"burst_factor = 4096\n", "burst_factor", 4096,
                  1000},
        ClampCase{"burst_period_ms = 4000000\n", "burst_period_ms",
                  4000000, 3600000},
        ClampCase{"diurnal_period_ms = 100000000\n",
                  "diurnal_period_ms", 100000000, 86400000},
        ClampCase{"diurnal_amplitude = 1.5\n", "diurnal_amplitude",
                  1.5, 1},
        ClampCase{"diurnal_amplitude = -0.5\n", "diurnal_amplitude",
                  -0.5, 0},
        ClampCase{"duration_ms = 0\n", "duration_ms", 0, 1},
        ClampCase{"duration_ms = 100000000\n", "duration_ms",
                  100000000, 86400000},
        ClampCase{"shards = 0\n", "shards", 0, 1},
        ClampCase{"shards = 300\n", "shards", 300, 256},
        ClampCase{"connections = 0\n", "connections", 0, 1},
        ClampCase{"connections = 70000\n", "connections", 70000,
                  65536},
        ClampCase{"keys = 0\n", "keys", 0, 1},
        ClampCase{"keys = 2000000\n", "keys", 2000000, 1048576},
        ClampCase{"zipf_s = 9\n", "zipf_s", 9, 8},
        ClampCase{"zipf_s = -1\n", "zipf_s", -1, 0},
        ClampCase{"read_pct = 150\n", "read_pct", 150, 100},
        ClampCase{"object_bytes = 8\n", "object_bytes", 8, 16},
        ClampCase{"object_bytes = 10000\n", "object_bytes", 10000,
                  4096},
        ClampCase{"request_bytes = 8\n", "request_bytes", 8, 16},
        ClampCase{"request_bytes = 10000\n", "request_bytes", 10000,
                  4096}));

TEST(ScenarioClampRules, BurstLenIsBoundedByBurstPeriod)
{
    ScenarioParseResult r = parse_ok(
        "burst_period_ms = 100\n"
        "burst_len_ms = 250\n");
    EXPECT_EQ(r.spec.burst_period_ms, 100u);
    EXPECT_EQ(r.spec.burst_len_ms, 100u);
    ASSERT_EQ(r.clamped.size(), 1u);
    EXPECT_EQ(r.clamped[0], "burst_len_ms: 250 clamped to 100");
}

TEST(ScenarioClampRules, UpdatePctIsBoundedByRemainderAfterReads)
{
    ScenarioParseResult r = parse_ok(
        "read_pct = 70\n"
        "update_pct = 50\n");
    EXPECT_EQ(r.spec.read_pct, 70u);
    EXPECT_EQ(r.spec.update_pct, 30u);
    ASSERT_EQ(r.clamped.size(), 1u);
    EXPECT_EQ(r.clamped[0], "update_pct: 50 clamped to 30");
}

TEST(ScenarioClampRules, ChurnShardsAreBoundedBySplit)
{
    ScenarioParseResult r = parse_ok(
        "shards = 4\n"
        "alloc_heavy_shards = 3\n"
        "defer_heavy_shards = 3\n");
    EXPECT_EQ(r.spec.alloc_heavy_shards, 3u);
    // Only one shard remains after the alloc-heavy claim.
    EXPECT_EQ(r.spec.defer_heavy_shards, 1u);
    ASSERT_EQ(r.clamped.size(), 1u);
    EXPECT_EQ(r.clamped[0], "defer_heavy_shards: 3 clamped to 1");
}

TEST(ScenarioClampRules, NegativeIntegersClampToZeroThenFloor)
{
    // A negative integer notes the sign clamp first, then any
    // nonzero floor (shards >= 1) notes a second clamp.
    ScenarioParseResult r = parse_ok("shards = -3\n");
    EXPECT_EQ(r.spec.shards, 1u);
    ASSERT_EQ(r.clamped.size(), 2u);
    EXPECT_EQ(r.clamped[0], "shards: -3 clamped to 0");
    EXPECT_EQ(r.clamped[1], "shards: 0 clamped to 1");

    // Zero-floored fields note only the sign clamp.
    ScenarioParseResult r2 = parse_ok("burst_period_ms = -5\n");
    EXPECT_EQ(r2.spec.burst_period_ms, 0u);
    ASSERT_EQ(r2.clamped.size(), 1u);
    EXPECT_EQ(r2.clamped[0], "burst_period_ms: -5 clamped to 0");
}

TEST(ScenarioClampRules, ClampScenarioIsIdempotent)
{
    ScenarioSpec s;
    s.rate_rps = 1e12;
    s.shards = 999;
    s.read_pct = 90;
    s.update_pct = 90;
    s.burst_period_ms = 10;
    s.burst_len_ms = 99;
    clamp_scenario(s);
    ScenarioSpec once = s;
    std::vector<std::string> notes;
    clamp_scenario(s, &notes);
    EXPECT_TRUE(notes.empty())
        << "second clamp still changed: " << notes.front();
    EXPECT_EQ(s, once);
}

// ---------------------------------------------------------------
// Round-trips and the golden spec file
// ---------------------------------------------------------------

TEST(ScenarioRoundTrip, StockScenariosSurviveSerializeParse)
{
    for (const std::string& name : stock_scenario_names()) {
        ScenarioSpec s;
        ASSERT_TRUE(stock_scenario(name, s));
        ScenarioParseResult r = parse_ok(scenario_to_text(s));
        EXPECT_TRUE(r.clamped.empty()) << name;
        EXPECT_EQ(r.spec, s) << name;
    }
}

TEST(ScenarioRoundTrip, CustomSpecSurvivesSerializeParse)
{
    ScenarioSpec s;
    s.name = "rt.check-1";
    s.arrival = ArrivalKind::kUniform;
    s.rate_rps = 12345.678;
    s.burst_factor = 2.5;
    s.burst_period_ms = 77;
    s.burst_len_ms = 11;
    s.diurnal_period_ms = 901;
    s.diurnal_amplitude = 0.125;
    s.duration_ms = 4321;
    s.shards = 9;
    s.connections = 1000;
    s.keys = 54321;
    s.zipf_s = 0.99;
    s.read_pct = 33;
    s.update_pct = 44;
    s.alloc_heavy_shards = 4;
    s.defer_heavy_shards = 2;
    s.object_bytes = 48;
    s.request_bytes = 4096;
    s.seed = 0xfeedfacecafeULL;
    clamp_scenario(s);

    ScenarioParseResult r = parse_ok(scenario_to_text(s));
    EXPECT_TRUE(r.clamped.empty());
    EXPECT_EQ(r.spec, s);
    // Canonical text is a fixed point.
    EXPECT_EQ(scenario_to_text(r.spec), scenario_to_text(s));
}

std::string
golden_path(const char* file)
{
    return std::string(PRUDENCE_TEST_GOLDEN_DIR) + "/" + file;
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(ScenarioGolden, BurstHotSpecPinnedByteForByte)
{
    const std::string input =
        read_file(golden_path("burst_hot.scenario"));
    ASSERT_FALSE(input.empty())
        << "missing golden input " << golden_path("burst_hot.scenario");

    ScenarioParseResult r = parse_ok(input);
    EXPECT_TRUE(r.clamped.empty());
    const std::string canonical = scenario_to_text(r.spec);

    const std::string path = golden_path("burst_hot.golden.scenario");
    if (std::getenv("PRUDENCE_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << canonical;
        GTEST_SKIP() << "golden file regenerated: " << path;
    }
    const std::string want = read_file(path);
    ASSERT_FALSE(want.empty())
        << "missing golden file " << path
        << " (generate with PRUDENCE_UPDATE_GOLDEN=1)";
    EXPECT_EQ(canonical, want)
        << "canonical serialization diverged from " << path
        << "; if the change is intentional, regenerate with "
           "PRUDENCE_UPDATE_GOLDEN=1";

    // And the canonical text re-parses to the identical spec.
    ScenarioParseResult again = parse_ok(canonical);
    EXPECT_EQ(again.spec, r.spec);
}

// ---------------------------------------------------------------
// Shard classes and mixes
// ---------------------------------------------------------------

TEST(ScenarioShards, ChurnSplitAssignsClassesInOrder)
{
    ScenarioSpec s;
    ASSERT_TRUE(stock_scenario("churn", s));
    ASSERT_EQ(s.shards, 6u);
    EXPECT_EQ(s.shard_class(0), ShardClass::kAllocHeavy);
    EXPECT_EQ(s.shard_class(1), ShardClass::kAllocHeavy);
    EXPECT_EQ(s.shard_class(2), ShardClass::kDeferHeavy);
    EXPECT_EQ(s.shard_class(3), ShardClass::kDeferHeavy);
    EXPECT_EQ(s.shard_class(4), ShardClass::kNormal);
    EXPECT_EQ(s.shard_class(5), ShardClass::kNormal);
}

TEST(ScenarioShards, MixesFollowTheClassTable)
{
    ScenarioSpec s;
    s.read_pct = 55;
    s.update_pct = 25;
    ShardMix normal = shard_mix(s, ShardClass::kNormal);
    EXPECT_EQ(normal.read_pct, 55u);
    EXPECT_EQ(normal.update_pct, 25u);

    ShardMix ah = shard_mix(s, ShardClass::kAllocHeavy);
    ShardMix dh = shard_mix(s, ShardClass::kDeferHeavy);
    // Alloc-heavy shards churn scratch pairs; defer-heavy shards pin
    // a high update (defer-free) share.
    EXPECT_GT(ah.scratch_pairs, normal.scratch_pairs);
    EXPECT_GT(dh.update_pct, normal.update_pct);
    EXPECT_LE(ah.read_pct + ah.update_pct, 100u);
    EXPECT_LE(dh.read_pct + dh.update_pct, 100u);
}

// ---------------------------------------------------------------
// Load-shape functions fed by the spec
// ---------------------------------------------------------------

TEST(ScenarioRate, FlatSpecIsFlat)
{
    ScenarioSpec s;
    s.rate_rps = 5000;
    for (std::uint64_t t : {0ull, 1'000'000ull, 999'000'000ull})
        EXPECT_DOUBLE_EQ(offered_rate_rps(s, t), 5000.0);
}

TEST(ScenarioRate, BurstWindowMultipliesTheRate)
{
    ScenarioSpec s;
    s.rate_rps = 1000;
    s.burst_factor = 8;
    s.burst_period_ms = 200;
    s.burst_len_ms = 25;
    // Inside the window (t mod 200ms < 25ms) the rate is 8x...
    EXPECT_DOUBLE_EQ(offered_rate_rps(s, 0), 8000.0);
    EXPECT_DOUBLE_EQ(offered_rate_rps(s, 24'000'000), 8000.0);
    EXPECT_DOUBLE_EQ(offered_rate_rps(s, 224'000'000), 8000.0);
    // ...and outside it the base rate applies.
    EXPECT_DOUBLE_EQ(offered_rate_rps(s, 25'000'000), 1000.0);
    EXPECT_DOUBLE_EQ(offered_rate_rps(s, 199'000'000), 1000.0);
}

TEST(ScenarioRate, DiurnalRampSwingsAroundTheMean)
{
    ScenarioSpec s;
    s.rate_rps = 1000;
    s.diurnal_period_ms = 1000;
    s.diurnal_amplitude = 0.5;
    // sin(0) = 0 at the start of the period...
    EXPECT_NEAR(offered_rate_rps(s, 0), 1000.0, 1e-6);
    // ...peak at a quarter period, trough at three quarters.
    EXPECT_NEAR(offered_rate_rps(s, 250'000'000), 1500.0, 1e-6);
    EXPECT_NEAR(offered_rate_rps(s, 750'000'000), 500.0, 1e-6);
}

TEST(ScenarioRate, EnvelopeNeverReachesZero)
{
    ScenarioSpec s;
    s.rate_rps = 1;  // clamp floor
    s.diurnal_period_ms = 1000;
    s.diurnal_amplitude = 1.0;  // swings through zero
    clamp_scenario(s);
    for (std::uint64_t t = 0; t < 1'000'000'000ull; t += 50'000'000)
        EXPECT_GT(offered_rate_rps(s, t), 0.0) << t;
}

TEST(ScenarioZipf, UniformAndSkewedSampling)
{
    ZipfSampler uniform(100, 0.0);
    EXPECT_EQ(uniform.n(), 100u);
    EXPECT_EQ(uniform.sample(0.0), 0u);
    EXPECT_EQ(uniform.sample(0.999), 99u);
    EXPECT_EQ(uniform.sample(0.505), 50u);

    // A strong skew concentrates most of the mass on the first keys.
    ZipfSampler zipf(1000, 1.2);
    EXPECT_EQ(zipf.sample(0.0), 0u);
    EXPECT_LT(zipf.sample(0.5), 10u);
    // The CDF still covers the whole domain.
    EXPECT_LT(zipf.sample(0.9999999), 1000u);
    // Monotone in the deviate.
    std::uint32_t prev = 0;
    for (double u = 0.0; u < 1.0; u += 0.01) {
        std::uint32_t k = zipf.sample(u);
        EXPECT_GE(k, prev) << u;
        prev = k;
    }
}

}  // namespace
}  // namespace prudence

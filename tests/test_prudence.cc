/**
 * @file
 * Deterministic unit tests for the Prudence allocator: every
 * Algorithm 1 path, driven by a ManualRcuDomain with the maintenance
 * thread disabled (maintenance_pass() is called explicitly).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "core/prudence_allocator.h"
#include "rcu/manual_domain.h"
#include "slab/geometry.h"

namespace prudence {
namespace {

/// Deterministic setup: manual epochs, single virtual CPU, no
/// background maintenance.
PrudenceConfig
manual_config(std::size_t arena = 64 << 20)
{
    PrudenceConfig cfg;
    cfg.arena_bytes = arena;
    cfg.cpus = 1;
    cfg.maintenance_interval = std::chrono::microseconds{0};
    return cfg;
}

TEST(Prudence, KmallocRoundTrip)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, manual_config());
    void* p = alloc.kmalloc(100);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x5A, 100);
    alloc.kfree(p);
}

TEST(Prudence, OversizeKmallocReturnsNull)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, manual_config());
    EXPECT_EQ(alloc.kmalloc(8193), nullptr);
}

TEST(Prudence, LiveObjectsAreDistinct)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, manual_config());
    CacheId id = alloc.create_cache("distinct", 64);
    std::set<void*> live;
    for (int i = 0; i < 1000; ++i) {
        void* p = alloc.cache_alloc(id);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(live.insert(p).second);
    }
    for (void* p : live)
        alloc.cache_free(id, p);
}

TEST(Prudence, DeferredObjectNotReusedBeforeGracePeriod)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, manual_config());
    CacheId id = alloc.create_cache("gp_safety", 128);

    void* p = alloc.cache_alloc(id);
    ASSERT_NE(p, nullptr);
    alloc.cache_free_deferred(id, p);
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 1);

    // Before the grace period: p must never come back.
    std::vector<void*> before;
    for (int i = 0; i < 300; ++i) {
        void* q = alloc.cache_alloc(id);
        ASSERT_NE(q, nullptr);
        EXPECT_NE(q, p) << "reused inside its grace period";
        before.push_back(q);
    }
    for (void* q : before)
        alloc.cache_free(id, q);
}

TEST(Prudence, DeferredObjectReusableAfterGracePeriod)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, manual_config());
    CacheId id = alloc.create_cache("gp_reuse", 128);

    void* p = alloc.cache_alloc(id);
    ASSERT_NE(p, nullptr);
    alloc.cache_free_deferred(id, p);
    // Flush the thread-local deferral buffer so the batch is
    // epoch-tagged before the grace period below (batched deferral
    // tags at spill time, not at cache_free_deferred time).
    alloc.drain_thread();
    domain.advance();

    // Eliminating extended lifetimes: p comes back through the latent
    // merge within a bounded number of allocations — no external
    // processing step required.
    std::size_t bound =
        compute_slab_geometry(128).cache_capacity * 4;
    std::vector<void*> got;
    bool reused = false;
    for (std::size_t i = 0; i < bound; ++i) {
        void* q = alloc.cache_alloc(id);
        ASSERT_NE(q, nullptr);
        got.push_back(q);
        if (q == p) {
            reused = true;
            break;
        }
    }
    EXPECT_TRUE(reused) << "latent merge never returned the object";
    const CacheStatsSnapshot snap = alloc.cache_snapshot(id);
    EXPECT_EQ(snap.deferred_outstanding, 0);
    // The object returns either through the refill-time deferred-block
    // scan (a merge hit) or through a harvest-ahead promotion that
    // turned its depot block into reusable full stock first.
    EXPECT_GT(snap.latent_merge_hits + snap.depot_harvests_ahead, 0u);
    for (void* q : got)
        alloc.cache_free(id, q);
}

TEST(Prudence, LatentOverflowSpillsToLatentSlab)
{
    ManualRcuDomain domain;
    // Locked leg: this test exercises the latent-ring overflow ->
    // latent-slab -> premove chain, which the depot fast path (spills
    // become whole deferred depot blocks) deliberately bypasses.
    PrudenceConfig cfg = manual_config();
    cfg.lockfree_pcpu = false;
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("overflow", 128);
    std::size_t cap = compute_slab_geometry(128).cache_capacity;

    std::vector<void*> objs;
    for (std::size_t i = 0; i < cap * 3; ++i)
        objs.push_back(alloc.cache_alloc(id));
    for (void* p : objs)
        alloc.cache_free_deferred(id, p);

    auto s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.deferred_outstanding,
              static_cast<std::int64_t>(cap * 3));
    // More deferrals than the latent cache holds: the excess reached
    // latent slabs and triggered pre-movement.
    EXPECT_GT(s.premoves, 0u);
}

TEST(Prudence, PreMovedSlabsReclaimedAfterGracePeriod)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, manual_config());
    CacheId id = alloc.create_cache("premove_reclaim", 512);

    // Fill several slabs worth of objects, then defer-free all.
    std::vector<void*> objs;
    for (int i = 0; i < 1000; ++i)
        objs.push_back(alloc.cache_alloc(id));
    auto peak_pages = alloc.page_allocator().stats().pages_in_use;
    for (void* p : objs)
        alloc.cache_free_deferred(id, p);

    // Grace period completes; quiesce reclaims every latent object
    // and shrinks the now-empty slabs.
    alloc.quiesce();
    auto s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.deferred_outstanding, 0);
    EXPECT_EQ(s.live_objects, 0);
    EXPECT_GT(s.shrinks, 0u);
    EXPECT_LT(alloc.page_allocator().stats().pages_in_use, peak_pages);
}

TEST(Prudence, PreflushRequestedAndExecuted)
{
    ManualRcuDomain domain;
    // Locked leg: pre-flush triggers on per-CPU object/latent cache
    // occupancy, which stays empty while the depot absorbs magazine
    // flushes and deferral spills.
    PrudenceConfig cfg = manual_config();
    cfg.lockfree_pcpu = false;
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("preflush", 128);
    std::size_t cap = compute_slab_geometry(128).cache_capacity;

    // Build a full object cache AND a loaded latent cache: allocate
    // 2*cap, free cap (fills the object cache), defer cap (fills the
    // latent cache) — together they exceed the capacity, which is the
    // paper's pre-flush trigger.
    std::vector<void*> objs;
    for (std::size_t i = 0; i < 2 * cap; ++i)
        objs.push_back(alloc.cache_alloc(id));
    for (std::size_t i = 0; i < cap; ++i)
        alloc.cache_free(id, objs[i]);
    for (std::size_t i = cap; i < 2 * cap; ++i)
        alloc.cache_free_deferred(id, objs[i]);

    EXPECT_EQ(alloc.cache_snapshot(id).preflushes, 0u);
    alloc.maintenance_pass();
    auto s = alloc.cache_snapshot(id);
    EXPECT_GT(s.preflushes, 0u);
    // Deferred objects moved to latent slabs stay deferred (their
    // grace period has not completed).
    EXPECT_EQ(s.deferred_outstanding, static_cast<std::int64_t>(cap));
}

TEST(Prudence, MaintenanceMergesAfterGracePeriod)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, manual_config());
    CacheId id = alloc.create_cache("maint_merge", 128);

    void* p = alloc.cache_alloc(id);
    alloc.cache_free_deferred(id, p);
    // Spill the thread-local deferral buffer so its epoch tag
    // precedes the grace period the maintenance sweep observes.
    alloc.drain_thread();
    domain.advance();
    alloc.maintenance_pass();
    // The maintenance sweep merged the safe latent object back into
    // the object cache — no allocation was needed to reclaim it.
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 0);
}

TEST(Prudence, OomDeferralWaitsAndSucceeds)
{
    // Arena sized so that live + deferred exhausts it: the allocation
    // that would fail must wait for the (manual) grace period, pull
    // the deferred memory back and succeed (Algorithm 1 lines 31-32).
    ManualRcuDomain domain;
    PrudenceConfig cfg = manual_config(/*arena=*/2 << 20);
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("oom_defer", 4096);

    std::vector<void*> objs;
    for (;;) {
        void* p = alloc.cache_alloc(id);
        if (p == nullptr)
            break;
        objs.push_back(p);
    }
    ASSERT_GT(objs.size(), 50u);
    // Everything is live; now defer-free it all and allocate again.
    for (void* p : objs)
        alloc.cache_free_deferred(id, p);

    void* p = alloc.cache_alloc(id);
    EXPECT_NE(p, nullptr)
        << "OOM deferral failed to reclaim deferred memory";
    auto s = alloc.cache_snapshot(id);
    EXPECT_GT(s.oom_waits, 0u);
    alloc.cache_free(id, p);
}

TEST(Prudence, OomWithoutDeferredFailsCleanly)
{
    ManualRcuDomain domain;
    PrudenceConfig cfg = manual_config(/*arena=*/1 << 20);
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("oom_hard", 4096);
    std::vector<void*> objs;
    for (;;) {
        void* p = alloc.cache_alloc(id);
        if (p == nullptr)
            break;
        objs.push_back(p);
    }
    auto s = alloc.cache_snapshot(id);
    EXPECT_GT(s.oom_failures, 0u);
    EXPECT_EQ(s.oom_waits, 0u);  // nothing deferred, no point waiting
    for (void* p : objs)
        alloc.cache_free(id, p);
}

TEST(Prudence, OomDeferralDisabledFailsFast)
{
    ManualRcuDomain domain;
    PrudenceConfig cfg = manual_config(/*arena=*/1 << 20);
    cfg.oom_deferral = false;
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("oom_off", 4096);
    std::vector<void*> objs;
    for (;;) {
        void* p = alloc.cache_alloc(id);
        if (p == nullptr)
            break;
        objs.push_back(p);
    }
    for (void* p : objs)
        alloc.cache_free_deferred(id, p);
    EXPECT_EQ(alloc.cache_alloc(id), nullptr);
    EXPECT_EQ(alloc.cache_snapshot(id).oom_waits, 0u);
}

TEST(Prudence, FlushAccountsForLatentOccupancy)
{
    // With a loaded latent cache, an overflow flush must evict more
    // objects than the bare half-capacity baseline. Locked leg: sized
    // flush is a property of the per-CPU spill path the depot
    // replaces with whole-block exchanges.
    ManualRcuDomain domain;
    PrudenceConfig cfg = manual_config();
    cfg.lockfree_pcpu = false;
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("sized_flush", 128);
    std::size_t cap = compute_slab_geometry(128).cache_capacity;

    std::vector<void*> objs;
    for (std::size_t i = 0; i < 3 * cap; ++i)
        objs.push_back(alloc.cache_alloc(id));
    // Load the latent cache halfway.
    for (std::size_t i = 0; i < cap / 2; ++i)
        alloc.cache_free_deferred(id, objs[i]);
    // Now overflow the object cache with immediate frees.
    for (std::size_t i = cap / 2; i < 3 * cap; ++i)
        alloc.cache_free(id, objs[i]);
    auto s = alloc.cache_snapshot(id);
    EXPECT_GT(s.flushes, 0u);
    // All immediate frees accounted; nothing lost.
    EXPECT_EQ(s.free_calls, 3 * cap - cap / 2);
    EXPECT_EQ(s.live_objects, 0);
}

TEST(Prudence, QuiesceReclaimsEverything)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, manual_config());
    CacheId id = alloc.create_cache("quiesce", 256);
    std::vector<void*> objs;
    for (int i = 0; i < 3000; ++i)
        objs.push_back(alloc.cache_alloc(id));
    for (void* p : objs)
        alloc.cache_free_deferred(id, p);
    alloc.quiesce();
    auto s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.deferred_outstanding, 0);
    EXPECT_EQ(s.live_objects, 0);
    // Retained free slabs plus the slabs pinned by objects parked in
    // the per-CPU object cache.
    SlabGeometry g = compute_slab_geometry(256);
    std::int64_t allowed = static_cast<std::int64_t>(
        g.free_slab_limit +
        (g.cache_capacity + g.objects_per_slab - 1) /
            g.objects_per_slab +
        2);
    EXPECT_LE(s.current_slabs, allowed);
    EXPECT_TRUE(alloc.page_allocator().check_integrity());
}

TEST(Prudence, HintedSelectionAvoidsDeferredHeavySlabs)
{
    // Figure 5 scenario: slab B's live objects are all deferred; a
    // refill should prefer other slabs so B can drain to empty and be
    // released, reducing fragmentation.
    ManualRcuDomain domain;
    PrudenceConfig cfg = manual_config();
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("fig5", 1024);
    std::size_t per_slab = compute_slab_geometry(1024).objects_per_slab;

    // Allocate three slabs' worth.
    std::vector<void*> objs;
    for (std::size_t i = 0; i < per_slab * 3; ++i)
        objs.push_back(alloc.cache_alloc(id));
    // Defer everything (slabs become premoved free candidates).
    for (void* p : objs)
        alloc.cache_free_deferred(id, p);
    domain.advance();
    alloc.quiesce();
    auto s = alloc.cache_snapshot(id);
    // All three slabs' objects were reclaimable; fragmentation-aware
    // shrink releases the excess ones.
    EXPECT_EQ(s.deferred_outstanding, 0);
    EXPECT_LE(s.current_slabs,
              static_cast<std::int64_t>(
                  compute_slab_geometry(1024).free_slab_limit) +
                  2);
}

TEST(Prudence, AblationSwitchesStillCorrect)
{
    // Every optimization disabled: the allocator must remain correct
    // (objects unique, GP respected), merely slower.
    ManualRcuDomain domain;
    PrudenceConfig cfg = manual_config();
    cfg.merge_on_alloc = false;
    cfg.partial_refill = false;
    cfg.sized_flush = false;
    cfg.idle_preflush = false;
    cfg.slab_premove = false;
    cfg.hinted_slab_selection = false;
    cfg.oom_deferral = false;
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("ablated", 128);

    std::set<void*> live;
    std::vector<void*> deferred;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 100; ++i) {
            void* p = alloc.cache_alloc(id);
            ASSERT_NE(p, nullptr);
            EXPECT_TRUE(live.insert(p).second);
        }
        int k = 0;
        for (void* p : live) {
            if (k++ % 2 == 0)
                deferred.push_back(p);
        }
        for (void* p : deferred) {
            live.erase(p);
            alloc.cache_free_deferred(id, p);
        }
        deferred.clear();
        domain.advance();
    }
    for (void* p : live)
        alloc.cache_free(id, p);
    alloc.quiesce();
    EXPECT_EQ(alloc.cache_snapshot(id).live_objects, 0);
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 0);
}

TEST(Prudence, StatsAccountingInvariants)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, manual_config());
    CacheId id = alloc.create_cache("accounting", 64);
    std::vector<void*> objs;
    for (int i = 0; i < 500; ++i)
        objs.push_back(alloc.cache_alloc(id));
    for (int i = 0; i < 200; ++i)
        alloc.cache_free(id, objs[i]);
    for (int i = 200; i < 350; ++i)
        alloc.cache_free_deferred(id, objs[i]);

    auto s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.alloc_calls, 500u);
    EXPECT_EQ(s.free_calls, 200u);
    EXPECT_EQ(s.deferred_free_calls, 150u);
    EXPECT_EQ(s.live_objects, 150);
    EXPECT_LE(s.cache_hits, s.alloc_calls);
    EXPECT_GE(s.peak_live_objects, 500);
    for (int i = 350; i < 500; ++i)
        alloc.cache_free(id, objs[i]);
}

TEST(Prudence, KfreeDeferredDispatchesByPointer)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, manual_config());
    void* p = alloc.kmalloc(1000);  // kmalloc-1024
    ASSERT_NE(p, nullptr);
    alloc.kfree_deferred(p);
    for (const auto& s : alloc.snapshots()) {
        if (s.cache_name == "kmalloc-1024") {
            EXPECT_EQ(s.deferred_free_calls, 1u);
            EXPECT_EQ(s.deferred_outstanding, 1);
        }
    }
    alloc.quiesce();
}

}  // namespace
}  // namespace prudence

/**
 * @file
 * Unit and property tests for the buddy page allocator.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "page/buddy_allocator.h"
#include "page/page_types.h"

namespace prudence {
namespace {

constexpr std::size_t kArena = 16 << 20;  // 16 MiB

TEST(Buddy, SinglePageRoundTrip)
{
    BuddyAllocator buddy(kArena);
    void* p = buddy.alloc_pages(0);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(buddy.stats().pages_in_use, 1);
    buddy.free_pages(p, 0);
    EXPECT_EQ(buddy.stats().pages_in_use, 0);
    EXPECT_TRUE(buddy.check_integrity());
}

TEST(Buddy, AllocationIsPageAligned)
{
    BuddyAllocator buddy(kArena);
    for (unsigned order = 0; order <= 5; ++order) {
        void* p = buddy.alloc_pages(order);
        ASSERT_NE(p, nullptr) << "order " << order;
        auto off = static_cast<std::size_t>(
            static_cast<std::byte*>(p) - buddy.base());
        EXPECT_EQ(off % order_bytes(order), 0u) << "order " << order;
        buddy.free_pages(p, order);
    }
    EXPECT_TRUE(buddy.check_integrity());
}

TEST(Buddy, WritesDoNotCorruptNeighbors)
{
    BuddyAllocator buddy(kArena);
    void* a = buddy.alloc_pages(1);
    void* b = buddy.alloc_pages(1);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    std::memset(a, 0xAA, order_bytes(1));
    std::memset(b, 0xBB, order_bytes(1));
    EXPECT_EQ(static_cast<unsigned char*>(a)[0], 0xAA);
    EXPECT_EQ(static_cast<unsigned char*>(b)[order_bytes(1) - 1], 0xBB);
    buddy.free_pages(a, 1);
    buddy.free_pages(b, 1);
    EXPECT_TRUE(buddy.check_integrity());
}

TEST(Buddy, ExhaustionReturnsNull)
{
    BuddyAllocator buddy(1 << 20);  // 256 pages
    std::vector<void*> blocks;
    for (;;) {
        void* p = buddy.alloc_pages(0);
        if (p == nullptr)
            break;
        blocks.push_back(p);
    }
    EXPECT_EQ(blocks.size(), buddy.capacity_pages());
    EXPECT_EQ(buddy.stats().failed_allocs, 1u);
    for (void* p : blocks)
        buddy.free_pages(p, 0);
    EXPECT_EQ(buddy.stats().pages_in_use, 0);
    EXPECT_TRUE(buddy.check_integrity());
}

TEST(Buddy, CoalescingRestoresMaxOrderBlocks)
{
    BuddyAllocator buddy(kArena);
    std::size_t max_before = buddy.free_blocks(kMaxPageOrder);
    ASSERT_GT(max_before, 0u);

    // Fragment: allocate every page, then free all of them.
    std::vector<void*> blocks;
    for (;;) {
        void* p = buddy.alloc_pages(0);
        if (p == nullptr)
            break;
        blocks.push_back(p);
    }
    EXPECT_EQ(buddy.free_blocks(kMaxPageOrder), 0u);
    // Free in shuffled order to exercise merge chains.
    std::mt19937 rng(42);
    std::shuffle(blocks.begin(), blocks.end(), rng);
    for (void* p : blocks)
        buddy.free_pages(p, 0);
    EXPECT_EQ(buddy.free_blocks(kMaxPageOrder), max_before);
    EXPECT_TRUE(buddy.check_integrity());
}

TEST(Buddy, MixedOrderStressKeepsIntegrity)
{
    BuddyAllocator buddy(kArena);
    std::mt19937 rng(7);
    std::vector<std::pair<void*, unsigned>> live;
    for (int i = 0; i < 20000; ++i) {
        if (live.empty() || rng() % 2 == 0) {
            unsigned order = rng() % 4;
            void* p = buddy.alloc_pages(order);
            if (p != nullptr)
                live.emplace_back(p, order);
        } else {
            std::size_t j = rng() % live.size();
            buddy.free_pages(live[j].first, live[j].second);
            live[j] = live.back();
            live.pop_back();
        }
        if (i % 4096 == 0)
            ASSERT_TRUE(buddy.check_integrity()) << "iteration " << i;
    }
    for (auto& [p, order] : live)
        buddy.free_pages(p, order);
    EXPECT_EQ(buddy.stats().pages_in_use, 0);
    EXPECT_TRUE(buddy.check_integrity());
}

TEST(Buddy, PeakTracksHighWaterMark)
{
    BuddyAllocator buddy(kArena);
    void* a = buddy.alloc_pages(3);  // 8 pages
    void* b = buddy.alloc_pages(2);  // 4 pages
    buddy.free_pages(b, 2);
    void* c = buddy.alloc_pages(0);  // 1 page
    EXPECT_EQ(buddy.stats().peak_pages_in_use, 12);
    buddy.free_pages(a, 3);
    buddy.free_pages(c, 0);
}

TEST(Buddy, ConcurrentAllocFreeIsSafe)
{
    BuddyAllocator buddy(64 << 20);
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&buddy, t] {
            std::mt19937 rng(t);
            std::vector<std::pair<void*, unsigned>> live;
            for (int i = 0; i < 5000; ++i) {
                if (live.empty() || rng() % 2 == 0) {
                    unsigned order = rng() % 3;
                    void* p = buddy.alloc_pages(order);
                    if (p != nullptr) {
                        std::memset(p, t, 64);
                        live.emplace_back(p, order);
                    }
                } else {
                    auto [p, order] = live.back();
                    live.pop_back();
                    buddy.free_pages(p, order);
                }
            }
            for (auto& [p, order] : live)
                buddy.free_pages(p, order);
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(buddy.stats().pages_in_use, 0);
    EXPECT_TRUE(buddy.check_integrity());
}

/// Property sweep: for any order, blocks are disjoint and aligned.
class BuddyOrderProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BuddyOrderProperty, BlocksAreDisjointAndAligned)
{
    unsigned order = GetParam();
    BuddyAllocator buddy(kArena);
    std::vector<void*> blocks;
    for (int i = 0; i < 32; ++i) {
        void* p = buddy.alloc_pages(order);
        if (p == nullptr)
            break;
        blocks.push_back(p);
    }
    ASSERT_FALSE(blocks.empty());
    std::sort(blocks.begin(), blocks.end());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        auto off = static_cast<std::size_t>(
            static_cast<std::byte*>(blocks[i]) - buddy.base());
        EXPECT_EQ(off % order_bytes(order), 0u);
        if (i > 0) {
            auto gap = static_cast<std::size_t>(
                static_cast<std::byte*>(blocks[i]) -
                static_cast<std::byte*>(blocks[i - 1]));
            EXPECT_GE(gap, order_bytes(order));
        }
    }
    for (void* p : blocks)
        buddy.free_pages(p, order);
    EXPECT_TRUE(buddy.check_integrity());
}

INSTANTIATE_TEST_SUITE_P(AllOrders, BuddyOrderProperty,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u));

// ---------------------------------------------------------------------
// Checked-free diagnostics: caller bugs abort with a clear message
// instead of silently corrupting the free lists (the checks are
// always on, not release-stripped asserts).
// ---------------------------------------------------------------------

using BuddyCheckedFreeDeathTest = ::testing::Test;

TEST(BuddyCheckedFreeDeathTest, DoubleFreeAborts)
{
    BuddyAllocator buddy(kArena);
    void* p = buddy.alloc_pages(0);
    ASSERT_NE(p, nullptr);
    buddy.free_pages(p, 0);
    EXPECT_DEATH(buddy.free_pages(p, 0), "buddy checked-free: double free");
}

TEST(BuddyCheckedFreeDeathTest, WrongOrderFreeAborts)
{
    BuddyAllocator buddy(kArena);
    void* p = buddy.alloc_pages(0);
    ASSERT_NE(p, nullptr);
    // Freeing a single page as an order-2 block trips either the
    // alignment check or the tail-page check depending on placement.
    EXPECT_DEATH(buddy.free_pages(p, 2), "buddy checked-free: ");
}

TEST(BuddyCheckedFreeDeathTest, ForeignPointerAborts)
{
    BuddyAllocator buddy(kArena);
    int local = 0;
    EXPECT_DEATH(buddy.free_pages(&local, 0),
                 "buddy checked-free: pointer outside the arena");
}

TEST(BuddyCheckedFreeDeathTest, MisalignedPointerAborts)
{
    BuddyAllocator buddy(kArena);
    void* p = buddy.alloc_pages(0);
    ASSERT_NE(p, nullptr);
    void* inside = static_cast<std::byte*>(p) + 8;
    EXPECT_DEATH(buddy.free_pages(inside, 0),
                 "buddy checked-free: pointer not page-aligned");
    buddy.free_pages(p, 0);
}

TEST(BuddyCheckedFreeDeathTest, OrderOutOfRangeAborts)
{
    BuddyAllocator buddy(kArena);
    void* p = buddy.alloc_pages(0);
    ASSERT_NE(p, nullptr);
    EXPECT_DEATH(buddy.free_pages(p, kMaxPageOrder + 1),
                 "buddy checked-free: order out of range");
    buddy.free_pages(p, 0);
}

}  // namespace
}  // namespace prudence

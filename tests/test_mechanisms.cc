/**
 * @file
 * Focused tests for the measurement-driven mechanisms layered on
 * Algorithm 1: safe-prefix counting, FIFO list ordering, batched
 * spills, deferred-aware shrink retention, and the workload engine's
 * standing pools.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "api/allocator_factory.h"
#include "core/prudence_allocator.h"
#include "page/buddy_allocator.h"
#include "rcu/manual_domain.h"
#include "rcu/rcu_domain.h"
#include "slab/latent_ring.h"
#include "slab/node_lists.h"
#include "slab/slab_pool.h"
#include "workload/engine.h"

namespace prudence {
namespace {

TEST(LatentRingSafe, CountsSafePrefixOnly)
{
    LatentRing ring(8);
    int objs[5];
    ring.push(&objs[0], 2);
    ring.push(&objs[1], 3);
    ring.push(&objs[2], 3);
    ring.push(&objs[3], 7);
    ring.push(&objs[4], 9);

    EXPECT_EQ(ring.count_safe(1, 8), 0u);
    EXPECT_EQ(ring.count_safe(2, 8), 1u);
    EXPECT_EQ(ring.count_safe(3, 8), 3u);
    EXPECT_EQ(ring.count_safe(8, 8), 4u);
    EXPECT_EQ(ring.count_safe(100, 8), 5u);
    // Limit caps the scan.
    EXPECT_EQ(ring.count_safe(100, 2), 2u);
}

TEST(LatentRingSafe, WrapAroundKeepsPrefixSemantics)
{
    LatentRing ring(4);
    int o;
    ring.push(&o, 1);
    ring.push(&o, 2);
    ring.push(&o, 3);
    ring.pop_front();
    ring.pop_front();
    ring.push(&o, 4);
    ring.push(&o, 5);  // wraps
    // Contents now: epochs 3, 4, 5.
    EXPECT_EQ(ring.count_safe(4, 8), 2u);
}

TEST(NodeListsFifo, AppendsAtTail)
{
    BuddyAllocator buddy(8 << 20);
    PageOwnerTable owners(buddy);
    SlabPool pool("fifo", 64, buddy, owners);
    NodeLists& node = pool.node();

    SlabHeader* a = pool.grow();
    SlabHeader* b = pool.grow();
    SlabHeader* c = pool.grow();
    ASSERT_TRUE(a && b && c);
    {
        std::lock_guard<SpinLock> g(node.lock);
        node.move_to(a, SlabListKind::kFree);
        node.move_to(b, SlabListKind::kFree);
        node.move_to(c, SlabListKind::kFree);
        // FIFO: the first inserted is at the front.
        EXPECT_EQ(node.free.front(), a);
        // Removing and re-adding sends a slab to the back.
        node.move_to(a, SlabListKind::kPartial);
        node.move_to(a, SlabListKind::kFree);
        EXPECT_EQ(node.free.front(), b);
        std::vector<SlabHeader*> order;
        node.free.for_each([&](SlabHeader* s) {
            order.push_back(s);
            return true;
        });
        ASSERT_EQ(order.size(), 3u);
        EXPECT_EQ(order[0], b);
        EXPECT_EQ(order[1], c);
        EXPECT_EQ(order[2], a);
        for (SlabHeader* s : {a, b, c})
            node.move_to(s, SlabListKind::kNone);
    }
    for (SlabHeader* s : {a, b, c})
        pool.release_slab(s);
}

TEST(DeferredAwareKind, RingCarryingSlabsStayVisible)
{
    BuddyAllocator buddy(8 << 20);
    PageOwnerTable owners(buddy);
    SlabPool pool("kind", 128, buddy, owners);
    SlabHeader* slab = pool.grow();
    ASSERT_NE(slab, nullptr);

    // Fully free slab.
    EXPECT_EQ(NodeLists::deferred_aware_kind(slab),
              SlabListKind::kFree);

    // Drain the freelist: naturally "full", but with ring entries it
    // must remain scannable.
    std::vector<void*> objs;
    while (void* o = slab->freelist_pop())
        objs.push_back(o);
    EXPECT_EQ(NodeLists::natural_kind(slab), SlabListKind::kFull);
    EXPECT_EQ(NodeLists::deferred_aware_kind(slab),
              SlabListKind::kFull);  // no deferrals yet

    {
        std::lock_guard<SpinLock> g(slab->slab_lock);
        slab->ring_push(slab->index_of(objs.back()), 1);
    }
    objs.pop_back();
    // One ring entry: natural says full, deferred-aware says partial.
    EXPECT_EQ(NodeLists::natural_kind(slab), SlabListKind::kFull);
    EXPECT_EQ(NodeLists::deferred_aware_kind(slab),
              SlabListKind::kPartial);

    // Every remaining object deferred: free + deferred == total.
    {
        std::lock_guard<SpinLock> g(slab->slab_lock);
        for (void* o : objs)
            slab->ring_push(slab->index_of(o), 1);
    }
    EXPECT_EQ(NodeLists::deferred_aware_kind(slab),
              SlabListKind::kFree);

    merge_safe_latent(slab, 1);
    EXPECT_EQ(slab->free_count, slab->total_objects);
    pool.release_slab(slab);
}

TEST(SpillBatching, OverflowSpillsInBatchesNotPerObject)
{
    ManualRcuDomain domain;
    PrudenceConfig cfg;
    cfg.arena_bytes = 64 << 20;
    cfg.cpus = 1;
    cfg.maintenance_interval = std::chrono::microseconds{0};
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("spill", 512);

    std::size_t cap = compute_slab_geometry(512).cache_capacity;
    std::vector<void*> objs;
    // 4x capacity deferrals with no grace period: latent cache fills
    // once, then spills service the rest.
    for (std::size_t i = 0; i < cap * 4; ++i)
        objs.push_back(alloc.cache_alloc(id));
    for (void* p : objs)
        alloc.cache_free_deferred(id, p);

    auto s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.deferred_outstanding,
              static_cast<std::int64_t>(cap * 4));
    EXPECT_EQ(alloc.validate(), "");

    // Everything comes back after the grace period.
    domain.advance();
    alloc.quiesce();
    s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.deferred_outstanding, 0);
}

TEST(Retention, FreeSlabsHeldWhileDeferralsOutstanding)
{
    ManualRcuDomain domain;
    PrudenceConfig cfg;
    cfg.arena_bytes = 64 << 20;
    cfg.cpus = 1;
    cfg.maintenance_interval = std::chrono::microseconds{0};
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("retain", 1024);
    std::size_t per_slab = compute_slab_geometry(1024).objects_per_slab;

    // Create a large deferred backlog (slabs become premoved-free).
    std::vector<void*> objs;
    for (std::size_t i = 0; i < per_slab * 20; ++i)
        objs.push_back(alloc.cache_alloc(id));
    auto grown = alloc.cache_snapshot(id).current_slabs;
    for (void* p : objs)
        alloc.cache_free_deferred(id, p);

    // Despite the free list far exceeding the static limit, retention
    // keeps the memory while the backlog is outstanding.
    auto held = alloc.cache_snapshot(id);
    EXPECT_EQ(held.shrinks, 0u);
    EXPECT_EQ(held.current_slabs, grown);

    // Once reclaimed, the excess is released.
    domain.advance();
    alloc.quiesce();
    auto after = alloc.cache_snapshot(id);
    EXPECT_GT(after.shrinks, 0u);
    EXPECT_LT(after.current_slabs, grown / 2);
}

TEST(Retention, DisabledSwitchRestoresBaselineShrink)
{
    ManualRcuDomain domain;
    PrudenceConfig cfg;
    cfg.arena_bytes = 64 << 20;
    cfg.cpus = 1;
    cfg.maintenance_interval = std::chrono::microseconds{0};
    cfg.deferred_aware_shrink = false;
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("noretain", 1024);
    std::size_t per_slab = compute_slab_geometry(1024).objects_per_slab;

    std::vector<void*> objs;
    for (std::size_t i = 0; i < per_slab * 20; ++i)
        objs.push_back(alloc.cache_alloc(id));
    for (void* p : objs)
        alloc.cache_free_deferred(id, p);
    domain.advance();
    // Any allocation-driven merge/shrink cycle may now release slabs
    // eagerly; correctness is unchanged.
    for (int i = 0; i < 200; ++i) {
        void* p = alloc.cache_alloc(id);
        ASSERT_NE(p, nullptr);
        alloc.cache_free(id, p);
    }
    alloc.quiesce();
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 0);
    EXPECT_EQ(alloc.validate(), "");
}

TEST(WorkloadStandingPool, SeededAndDrained)
{
    RcuDomain rcu;
    PrudenceConfig cfg;
    cfg.arena_bytes = 64 << 20;
    cfg.cpus = 2;
    auto alloc = make_prudence_allocator(rcu, cfg);

    WorkloadSpec spec;
    spec.name = "standing";
    spec.caches = {{"held", 128, 250}};
    spec.ops = {{"noop_pair", 1.0, {{OpAction::Kind::kPair, 0, 1}}}};
    spec.threads = 2;
    spec.ops_per_thread = 100;
    spec.warmup_ops_per_thread = 10;
    spec.app_work_ns = 0;

    WorkloadResult r = run_workload(*alloc, spec, 1);
    // Live snapshot (pre-drain): 2 threads x 250 standing objects.
    ASSERT_EQ(r.caches_live.size(), 1u);
    EXPECT_EQ(r.caches_live[0].live_objects, 500);
    // Final snapshot: drained.
    EXPECT_EQ(r.caches[0].live_objects, 0);
}

TEST(MaintenanceRetentionHint, DecaysAfterBacklogDrains)
{
    ManualRcuDomain domain;
    PrudenceConfig cfg;
    cfg.arena_bytes = 64 << 20;
    cfg.cpus = 1;
    cfg.maintenance_interval = std::chrono::microseconds{0};
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("hint", 512);

    std::vector<void*> objs;
    for (int i = 0; i < 500; ++i)
        objs.push_back(alloc.cache_alloc(id));
    auto grown = alloc.cache_snapshot(id).current_slabs;
    for (void* p : objs)
        alloc.cache_free_deferred(id, p);
    alloc.maintenance_pass();  // raises the hint to the backlog
    EXPECT_EQ(alloc.cache_snapshot(id).shrinks, 0u);

    domain.advance();
    // Many decay passes: the hint fades, the sweep merges safe ring
    // entries, and shrink resumes on the drained slabs. (Maintenance
    // is deliberately lazy — full reclamation happens via allocation
    // pressure or quiesce(); here we only require the retention to
    // let go.)
    for (int i = 0; i < 64; ++i)
        alloc.maintenance_pass();
    auto s = alloc.cache_snapshot(id);
    EXPECT_LT(s.deferred_outstanding, 500);
    EXPECT_GT(s.shrinks, 0u);
    EXPECT_LT(s.current_slabs, grown);
    EXPECT_EQ(alloc.validate(), "");

    alloc.quiesce();
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 0);
}

}  // namespace
}  // namespace prudence

/**
 * @file
 * Tests for the deep-validation walker and for slab coloring.
 */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/prudence_allocator.h"
#include "page/buddy_allocator.h"
#include "rcu/manual_domain.h"
#include "slab/validate.h"
#include "slub/slub_allocator.h"

namespace prudence {
namespace {

TEST(Validate, FreshPoolIsConsistent)
{
    BuddyAllocator buddy(16 << 20);
    PageOwnerTable owners(buddy);
    SlabPool pool("v", 128, buddy, owners);
    PoolValidation v = validate_pool(pool);
    EXPECT_TRUE(v.ok) << v.error;
    EXPECT_EQ(v.slabs, 0u);
}

TEST(Validate, CountsMatchSlabState)
{
    BuddyAllocator buddy(16 << 20);
    PageOwnerTable owners(buddy);
    SlabPool pool("v", 128, buddy, owners);

    SlabHeader* slab = pool.grow();
    ASSERT_NE(slab, nullptr);
    void* a = slab->freelist_pop();
    void* b = slab->freelist_pop();
    {
        std::lock_guard<SpinLock> g(slab->slab_lock);
        slab->ring_push(slab->index_of(b), 3);
    }
    {
        std::lock_guard<SpinLock> g(pool.node().lock);
        pool.node().move_to(slab, SlabListKind::kPartial);
    }

    PoolValidation v = validate_pool(pool);
    EXPECT_TRUE(v.ok) << v.error;
    EXPECT_EQ(v.slabs, 1u);
    EXPECT_EQ(v.free_objects, slab->total_objects - 2u);
    EXPECT_EQ(v.ring_objects, 1u);
    EXPECT_EQ(v.outstanding_objects, 1u);  // `a` is held by us

    // Cleanup.
    EXPECT_EQ(merge_safe_latent(slab, 3), 1u);
    slab->freelist_push(a);
    {
        std::lock_guard<SpinLock> g(pool.node().lock);
        pool.node().move_to(slab, SlabListKind::kNone);
    }
    pool.release_slab(slab);
}

TEST(Validate, DetectsListKindMismatch)
{
    BuddyAllocator buddy(16 << 20);
    PageOwnerTable owners(buddy);
    SlabPool pool("v", 128, buddy, owners);
    SlabHeader* slab = pool.grow();
    ASSERT_NE(slab, nullptr);
    {
        std::lock_guard<SpinLock> g(pool.node().lock);
        pool.node().move_to(slab, SlabListKind::kFree);
    }
    // Corrupt the marker.
    slab->list_kind = SlabListKind::kPartial;
    PoolValidation v = validate_pool(pool);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.error.find("marked"), std::string::npos) << v.error;
    // Repair and release.
    slab->list_kind = SlabListKind::kFree;
    {
        std::lock_guard<SpinLock> g(pool.node().lock);
        pool.node().move_to(slab, SlabListKind::kNone);
    }
    pool.release_slab(slab);
}

TEST(Validate, DetectsFreeCountCorruption)
{
    BuddyAllocator buddy(16 << 20);
    PageOwnerTable owners(buddy);
    SlabPool pool("v", 128, buddy, owners);
    SlabHeader* slab = pool.grow();
    ASSERT_NE(slab, nullptr);
    {
        std::lock_guard<SpinLock> g(pool.node().lock);
        pool.node().move_to(slab, SlabListKind::kFree);
    }
    slab->free_count -= 1;  // corrupt
    PoolValidation v = validate_pool(pool);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.error.find("free_count"), std::string::npos) << v.error;
    slab->free_count += 1;
    {
        std::lock_guard<SpinLock> g(pool.node().lock);
        pool.node().move_to(slab, SlabListKind::kNone);
    }
    pool.release_slab(slab);
}

TEST(Validate, AllocatorLevelAccountingBothAllocators)
{
    ManualRcuDomain domain;
    {
        SlubConfig cfg;
        cfg.arena_bytes = 32 << 20;
        cfg.cpus = 2;
        cfg.callback.background_drainer = false;
        SlubAllocator alloc(domain, cfg);
        CacheId id = alloc.create_cache("acc", 128);
        std::vector<void*> objs;
        for (int i = 0; i < 500; ++i)
            objs.push_back(alloc.cache_alloc(id));
        for (int i = 0; i < 200; ++i)
            alloc.cache_free(id, objs[i]);
        for (int i = 200; i < 300; ++i)
            alloc.cache_free_deferred(id, objs[i]);
        EXPECT_EQ(alloc.validate(), "");
        for (int i = 300; i < 500; ++i)
            alloc.cache_free(id, objs[i]);
        alloc.quiesce();
        EXPECT_EQ(alloc.validate(), "");
    }
    {
        PrudenceConfig cfg;
        cfg.arena_bytes = 32 << 20;
        cfg.cpus = 2;
        cfg.maintenance_interval = std::chrono::microseconds{0};
        PrudenceAllocator alloc(domain, cfg);
        CacheId id = alloc.create_cache("acc", 128);
        std::vector<void*> objs;
        for (int i = 0; i < 500; ++i)
            objs.push_back(alloc.cache_alloc(id));
        for (int i = 0; i < 250; ++i)
            alloc.cache_free_deferred(id, objs[i]);
        EXPECT_EQ(alloc.validate(), "");
        domain.advance();
        alloc.maintenance_pass();
        EXPECT_EQ(alloc.validate(), "");
        for (int i = 250; i < 500; ++i)
            alloc.cache_free(id, objs[i]);
        alloc.quiesce();
        EXPECT_EQ(alloc.validate(), "");
    }
}

TEST(Coloring, SuccessiveSlabsRotateOffsets)
{
    BuddyAllocator buddy(32 << 20);
    PageOwnerTable owners(buddy);
    SlabPool pool("color", 128, buddy, owners);
    const SlabGeometry& g = pool.geometry();

    std::set<std::size_t> offsets;
    std::vector<SlabHeader*> slabs;
    for (std::size_t i = 0; i < g.color_slots + 2; ++i) {
        SlabHeader* s = pool.grow();
        ASSERT_NE(s, nullptr);
        auto off = static_cast<std::size_t>(
            s->objects_base - reinterpret_cast<std::byte*>(s));
        // Offset within [objects_offset, slab_bytes), cache aligned.
        EXPECT_GE(off, g.objects_offset);
        EXPECT_EQ((off - g.objects_offset) % kCacheLineSize, 0u);
        // Objects must still fit.
        EXPECT_LE(off + g.objects_per_slab * g.aligned_size,
                  g.slab_bytes);
        offsets.insert(off);
        slabs.push_back(s);
    }
    // With more than one color slot, at least two distinct offsets
    // must appear.
    if (g.color_slots > 1)
        EXPECT_GT(offsets.size(), 1u);
    for (SlabHeader* s : slabs)
        pool.release_slab(s);
}

TEST(Coloring, EveryKmallocClassHasValidColorGeometry)
{
    for (std::size_t size :
         {8u, 64u, 192u, 256u, 1024u, 4096u, 8192u}) {
        SlabGeometry g = compute_slab_geometry(size);
        EXPECT_GE(g.color_slots, 1u) << size;
        // The largest color offset must keep objects in bounds.
        std::size_t max_shift = (g.color_slots - 1) * kCacheLineSize;
        EXPECT_LE(g.objects_offset + max_shift +
                      g.objects_per_slab * g.aligned_size,
                  g.slab_bytes)
            << size;
    }
}

}  // namespace
}  // namespace prudence

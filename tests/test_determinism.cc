/**
 * @file
 * Determinism regression: the same fault seed must reproduce the same
 * run, bit for bit, when nothing else is a source of nondeterminism.
 *
 * The in-process analogue of `prudtorture --deterministic`: a single
 * thread drives an ops-bounded alloc/defer/advance workload over a
 * PrudenceAllocator with no background GP thread and no maintenance
 * thread. Two such runs with the same seed must agree on
 *
 *  - every fault site's evaluation count, trigger count and decision
 *    fingerprint (and each fingerprint must equal the offline
 *    replay), and
 *  - every accounting counter in the post-quiesce cache snapshots and
 *    buddy statistics.
 *
 * A third run with a different seed must NOT produce the same
 * fingerprints — otherwise the "determinism" would be vacuous.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "api/allocator_factory.h"
#include "core/prudence_allocator.h"
#include "fault/fault_injector.h"
#include "page/buddy_allocator.h"
#include "rcu/rcu_domain.h"
#include "stats/cache_stats.h"
#include "workload/engine.h"
#include "workload/loadgen.h"
#include "workload/scenario.h"

namespace {

using prudence::fault::FaultInjector;
using prudence::fault::SiteId;
using prudence::fault::SitePolicy;

struct RunResult
{
    std::vector<prudence::fault::SiteReport> sites;
    std::vector<prudence::CacheStatsSnapshot> snaps;
    prudence::BuddyStatsSnapshot buddy;
    std::uint64_t alloc_failures = 0;
};

constexpr std::size_t kOps = 4000;
constexpr std::size_t kSlots = 128;

RunResult
run_once(std::uint64_t seed)
{
    FaultInjector& fi = FaultInjector::instance();
    fi.reset(seed);
    SitePolicy prob;
    prob.probability = 0.02;
    fi.arm(SiteId::kBuddyAlloc, prob);
    fi.arm(SiteId::kSlabGrow, prob);
    fi.arm(SiteId::kRefillFail, prob);
    SitePolicy nth;
    nth.every_nth = 7;
    fi.arm(SiteId::kSlowPath, nth);

    prudence::RcuConfig rcu_cfg;
    rcu_cfg.background_gp_thread = false;
    prudence::RcuDomain domain(rcu_cfg);

    prudence::PrudenceConfig cfg;
    cfg.arena_bytes = 8u << 20;
    cfg.magazine_capacity = 8;
    cfg.maintenance_interval = std::chrono::microseconds(0);
    prudence::PrudenceAllocator alloc(domain, cfg);
    prudence::CacheId cache = alloc.create_cache("det.obj", 64);

    std::mt19937_64 rng(seed * 1000003);
    std::vector<void*> slots(kSlots, nullptr);
    RunResult out;

    for (std::size_t i = 0; i < kOps; ++i) {
        if (i % 256 == 255)
            domain.advance();
        void* p = alloc.cache_alloc(cache);
        if (p == nullptr) {
            ++out.alloc_failures;
            domain.advance();
            continue;
        }
        std::size_t s = rng() % kSlots;
        if (slots[s] != nullptr)
            alloc.cache_free_deferred(cache, slots[s]);
        slots[s] = p;
    }
    for (void*& p : slots) {
        if (p != nullptr)
            alloc.cache_free(cache, p);
        p = nullptr;
    }
    alloc.quiesce();

    out.sites = fi.report_all();
    out.snaps = alloc.snapshots();
    out.buddy = alloc.page_allocator().stats();
    fi.reset(seed);  // disarm before teardown
    return out;
}

void
expect_sites_equal(const RunResult& a, const RunResult& b)
{
    ASSERT_EQ(a.sites.size(), b.sites.size());
    for (std::size_t i = 0; i < a.sites.size(); ++i) {
        const auto& x = a.sites[i];
        const auto& y = b.sites[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.evaluations, y.evaluations)
            << prudence::fault::site_name(x.id);
        EXPECT_EQ(x.triggers, y.triggers)
            << prudence::fault::site_name(x.id);
        EXPECT_EQ(x.fingerprint, y.fingerprint)
            << prudence::fault::site_name(x.id);
    }
}

TEST(Determinism, SameSeedSameFingerprintsAndAccounting)
{
    RunResult a = run_once(42);
    RunResult b = run_once(42);

    expect_sites_equal(a, b);
    EXPECT_EQ(a.alloc_failures, b.alloc_failures);

    // Live fingerprints must also equal their own offline replay.
    for (const auto& r : a.sites) {
        EXPECT_EQ(r.fingerprint,
                  FaultInjector::expected_fingerprint(
                      42, r.id, r.policy, r.evaluations))
            << prudence::fault::site_name(r.id);
        EXPECT_EQ(r.triggers, FaultInjector::expected_triggers(
                                  42, r.id, r.policy, r.evaluations))
            << prudence::fault::site_name(r.id);
    }

    // Accounting snapshot: every counter, not just the totals.
    ASSERT_EQ(a.snaps.size(), b.snaps.size());
    for (std::size_t i = 0; i < a.snaps.size(); ++i) {
        const auto& x = a.snaps[i];
        const auto& y = b.snaps[i];
        ASSERT_EQ(x.cache_name, y.cache_name);
        EXPECT_EQ(x.alloc_calls, y.alloc_calls) << x.cache_name;
        EXPECT_EQ(x.cache_hits, y.cache_hits) << x.cache_name;
        EXPECT_EQ(x.free_calls, y.free_calls) << x.cache_name;
        EXPECT_EQ(x.deferred_free_calls, y.deferred_free_calls)
            << x.cache_name;
        EXPECT_EQ(x.grows, y.grows) << x.cache_name;
        EXPECT_EQ(x.live_objects, y.live_objects) << x.cache_name;
        EXPECT_EQ(x.deferred_outstanding, y.deferred_outstanding)
            << x.cache_name;
        EXPECT_EQ(x.oom_failures, y.oom_failures) << x.cache_name;
    }

    EXPECT_EQ(a.buddy.alloc_calls, b.buddy.alloc_calls);
    EXPECT_EQ(a.buddy.failed_allocs, b.buddy.failed_allocs);
    EXPECT_EQ(a.buddy.bad_frees, b.buddy.bad_frees);

    // Nothing leaked either run.
    for (const auto& s : a.snaps) {
        EXPECT_EQ(s.live_objects, 0) << s.cache_name;
        EXPECT_EQ(s.deferred_outstanding, 0) << s.cache_name;
    }
}

#if defined(PRUDENCE_FAULT_ENABLED)
TEST(Determinism, DifferentSeedsDiverge)
{
    RunResult a = run_once(42);
    RunResult c = run_once(43);

    // The workload itself (rng seeded off the fault seed) differs, so
    // at minimum the fingerprints of any site with evaluations under
    // both runs must differ somewhere.
    bool diverged = a.sites.size() != c.sites.size();
    for (std::size_t i = 0;
         !diverged && i < a.sites.size() && i < c.sites.size(); ++i) {
        if (a.sites[i].fingerprint != c.sites[i].fingerprint ||
            a.sites[i].evaluations != c.sites[i].evaluations)
            diverged = true;
    }
    EXPECT_TRUE(diverged)
        << "two different seeds produced identical decision streams";
}
#endif  // PRUDENCE_FAULT_ENABLED

// -----------------------------------------------------------------
// Scenario engine determinism (DESIGN.md §15): the op stream is a
// pure function of (spec, shard, seed) — identical across repeated
// runs and across engine thread counts.
// -----------------------------------------------------------------

prudence::ScenarioSpec
quick_scenario(const char* base, std::uint64_t seed)
{
    prudence::ScenarioSpec s;
    EXPECT_TRUE(prudence::stock_scenario(base, s));
    s.duration_ms = 40;  // short schedule; unpaced runs drain it fast
    s.seed = seed;
    prudence::clamp_scenario(s);
    return s;
}

TEST(ScenarioDeterminism, ArrivalScheduleIsSeedStableAndMonotone)
{
    prudence::ScenarioSpec spec = quick_scenario("burst", 11);
    for (unsigned shard = 0; shard < spec.shards; ++shard) {
        std::vector<std::uint64_t> a;
        std::vector<std::uint64_t> b;
        for (std::vector<std::uint64_t>* out : {&a, &b}) {
            prudence::ArrivalGen gen(spec, shard, spec.seed);
            std::uint64_t t = 0;
            while (gen.next(t))
                out->push_back(t);
        }
        ASSERT_EQ(a, b) << "shard " << shard;
        ASSERT_FALSE(a.empty()) << "shard " << shard;
        const std::uint64_t end_ns =
            std::uint64_t{spec.duration_ms} * 1'000'000;
        std::uint64_t prev = 0;
        for (std::uint64_t t : a) {
            EXPECT_GT(t, prev);
            EXPECT_LT(t, end_ns);
            prev = t;
        }
    }
}

TEST(ScenarioDeterminism, ShardScriptMatchesItsOfflineReplay)
{
    prudence::ScenarioSpec spec = quick_scenario("churn", 5);
    for (unsigned shard = 0; shard < spec.shards; ++shard) {
        prudence::ShardScript live(spec, shard, spec.seed);
        std::uint64_t live_count = 0;
        prudence::ScenarioRequest req;
        while (live.next(req))
            ++live_count;

        std::uint64_t count = 0;
        std::uint64_t fp = 0;
        prudence::ShardScript::replay(spec, shard, spec.seed, count,
                                      fp);
        EXPECT_EQ(live_count, count) << "shard " << shard;
        EXPECT_EQ(live.fingerprint(), fp) << "shard " << shard;
    }
}

TEST(ScenarioDeterminism, KeySkewSequenceIsSeedStable)
{
    prudence::ScenarioSpec spec = quick_scenario("burst", 23);
    prudence::ShardScript a(spec, 0, spec.seed);
    prudence::ShardScript b(spec, 0, spec.seed);
    prudence::ScenarioRequest ra;
    prudence::ScenarioRequest rb;
    while (true) {
        bool more_a = a.next(ra);
        bool more_b = b.next(rb);
        ASSERT_EQ(more_a, more_b);
        if (!more_a)
            break;
        EXPECT_EQ(ra.arrival_ns, rb.arrival_ns);
        EXPECT_EQ(ra.kind, rb.kind);
        EXPECT_EQ(ra.key, rb.key);
        EXPECT_EQ(ra.conn, rb.conn);
    }
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(ScenarioDeterminism, RunFingerprintIndependentOfThreadCount)
{
    prudence::ScenarioSpec spec = quick_scenario("churn", 9);
    prudence::ScenarioRunOptions opt;
    opt.paced = false;  // service-time mode: drain at full speed
    opt.telemetry = false;

    prudence::ScenarioResult results[2];
    const unsigned threads[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        prudence::RcuDomain rcu;
        prudence::PrudenceConfig cfg;
        cfg.arena_bytes = 64 << 20;
        cfg.cpus = 4;
        auto alloc = prudence::make_prudence_allocator(rcu, cfg);
        opt.threads = threads[i];
        results[i] = prudence::run_scenario(*alloc, rcu, spec, opt);
    }

    EXPECT_EQ(results[0].completed_requests,
              results[1].completed_requests);
    EXPECT_EQ(results[0].fingerprint, results[1].fingerprint);
    ASSERT_EQ(results[0].shard_fingerprints.size(),
              results[1].shard_fingerprints.size());
    for (std::size_t i = 0; i < results[0].shard_fingerprints.size();
         ++i)
        EXPECT_EQ(results[0].shard_fingerprints[i],
                  results[1].shard_fingerprints[i])
            << "shard " << i;

    // Both runs must also agree with the offline replay audit.
    std::vector<std::uint64_t> expect_fps;
    std::uint64_t expect_total = 0;
    for (unsigned shard = 0; shard < spec.shards; ++shard) {
        std::uint64_t count = 0;
        std::uint64_t fp = 0;
        prudence::ShardScript::replay(spec, shard, spec.seed, count,
                                      fp);
        expect_total += count;
        expect_fps.push_back(fp);
    }
    EXPECT_EQ(results[0].completed_requests, expect_total);
    EXPECT_EQ(results[0].shard_fingerprints, expect_fps);
    EXPECT_EQ(results[0].fingerprint,
              prudence::combine_fingerprints(expect_fps));
}

TEST(ScenarioDeterminism, DifferentScenarioSeedsDiverge)
{
    prudence::ScenarioSpec spec = quick_scenario("burst", 1);
    std::uint64_t c1 = 0;
    std::uint64_t f1 = 0;
    prudence::ShardScript::replay(spec, 0, 1, c1, f1);
    std::uint64_t c2 = 0;
    std::uint64_t f2 = 0;
    prudence::ShardScript::replay(spec, 0, 2, c2, f2);
    EXPECT_NE(f1, f2)
        << "two different scenario seeds produced identical op "
           "streams";
}

}  // namespace

/**
 * @file
 * Cross-module integration tests: allocator + RCU + data structures
 * + page allocator behaving together, including the paper's §3.5/§5.5
 * endurance contrast in miniature.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "api/allocator_factory.h"
#include "ds/rcu_list.h"
#include "rcu/rcu_domain.h"
#include "stats/memory_sampler.h"

namespace prudence {
namespace {

/**
 * Miniature Figure 3: continuous list updates under a background-
 * throttled baseline exhaust a small arena (OOM), while Prudence in
 * the identical setup reaches equilibrium.
 */
TEST(Integration, EnduranceContrastSlubOomsPrudenceDoesNot)
{
    constexpr std::size_t kArena = 24 << 20;
    constexpr int kUpdates = 200000;

    auto drive = [](Allocator& alloc, RcuDomain& rcu) {
        CacheId id = alloc.create_cache("endurance_obj", 512);
        std::uint64_t failures = 0;
        for (int i = 0; i < kUpdates; ++i) {
            void* fresh = alloc.cache_alloc(id);
            if (fresh == nullptr) {
                ++failures;
                continue;
            }
            alloc.cache_free_deferred(id, fresh);
        }
        (void)rcu;
        return failures;
    };

    std::uint64_t slub_failures;
    {
        RcuConfig rcfg;
        rcfg.gp_interval = std::chrono::microseconds{200};
        RcuDomain rcu(rcfg);
        SlubConfig cfg;
        cfg.arena_bytes = kArena;
        cfg.cpus = 1;
        // Background-throttled processing only (the Figure 3 regime):
        // arrival outruns the drainer.
        cfg.callback.inline_batch_limit = 0;
        cfg.callback.batch_limit = 10;
        cfg.callback.tick = std::chrono::microseconds{1000};
        auto alloc = make_slub_allocator(rcu, cfg);
        slub_failures = drive(*alloc, rcu);
        alloc->quiesce();
    }

    std::uint64_t prudence_failures;
    {
        RcuConfig rcfg;
        rcfg.gp_interval = std::chrono::microseconds{200};
        RcuDomain rcu(rcfg);
        PrudenceConfig cfg;
        cfg.arena_bytes = kArena;
        cfg.cpus = 1;
        auto alloc = make_prudence_allocator(rcu, cfg);
        prudence_failures = drive(*alloc, rcu);
        alloc->quiesce();
    }

    EXPECT_GT(slub_failures, 0u)
        << "baseline should exhaust the arena under throttling";
    EXPECT_EQ(prudence_failures, 0u)
        << "Prudence must reach equilibrium, not OOM";
}

TEST(Integration, MemorySamplerTracksAllocatorUsage)
{
    RcuDomain rcu;
    PrudenceConfig cfg;
    cfg.arena_bytes = 64 << 20;
    cfg.cpus = 2;
    auto alloc = make_prudence_allocator(rcu, cfg);

    MemorySampler sampler(
        [&] { return alloc->page_allocator().bytes_in_use(); },
        std::chrono::milliseconds(2));
    sampler.start();

    CacheId id = alloc->create_cache("sampled", 1024);
    std::vector<void*> objs;
    for (int i = 0; i < 20000; ++i)
        objs.push_back(alloc->cache_alloc(id));
    // Poll (deadline-bounded) instead of sleeping a fixed interval:
    // the sampler ticks every 2ms, but under load a fixed sleep races
    // the sampling thread and makes the test timing-sensitive.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    auto wait_for_sample = [&](auto&& pred) {
        while (std::chrono::steady_clock::now() < deadline) {
            auto got = sampler.samples();
            if (pred(got))
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    };
    // Barrier 1: the sampler has demonstrably seen the full working
    // set live.
    wait_for_sample([](const auto& got) {
        for (const auto& s : got)
            if (s.value > 20u << 20)
                return true;
        return false;
    });
    for (void* p : objs)
        alloc->cache_free(id, p);
    alloc->quiesce();
    // Barrier 2: the sampler has seen the post-reclaim tail (and has
    // enough samples for the timeline assertions below).
    wait_for_sample([](const auto& got) {
        std::uint64_t high = 0;
        for (const auto& s : got)
            high = std::max(high, s.value);
        return got.size() >= 5u && !got.empty() &&
               got.back().value < high / 2;
    });
    sampler.stop();

    auto samples = sampler.samples();
    ASSERT_GE(samples.size(), 5u);
    std::uint64_t peak = 0;
    for (const auto& s : samples)
        peak = std::max(peak, s.value);
    // The 20k x 1KiB working set must be visible in the timeline, and
    // the tail must drop well below the peak after reclaim.
    EXPECT_GT(peak, 20u << 20);
    EXPECT_LT(samples.back().value, peak / 2);
}

/// The paper's turnkey-replacement claim: the same data-structure
/// code runs unchanged on either allocator, only the deferral
/// machinery underneath differs.
TEST(Integration, TurnkeyReplacementAcrossAllocators)
{
    for (bool use_prudence : {false, true}) {
        RcuConfig rcfg;
        rcfg.gp_interval = std::chrono::microseconds{100};
        RcuDomain rcu(rcfg);
        std::unique_ptr<Allocator> alloc;
        if (use_prudence) {
            PrudenceConfig cfg;
            cfg.arena_bytes = 64 << 20;
            cfg.cpus = 2;
            alloc = make_prudence_allocator(rcu, cfg);
        } else {
            SlubConfig cfg;
            cfg.arena_bytes = 64 << 20;
            cfg.cpus = 2;
            cfg.callback.inline_batch_limit = 10;
            alloc = make_slub_allocator(rcu, cfg);
        }

        RcuList<std::uint64_t> list(rcu, *alloc);
        for (std::uint64_t k = 0; k < 200; ++k)
            ASSERT_TRUE(list.insert(k, k));
        for (int round = 0; round < 20; ++round)
            for (std::uint64_t k = 0; k < 200; ++k)
                ASSERT_TRUE(list.update(k, k + round));
        std::uint64_t v = 0;
        ASSERT_TRUE(list.lookup(100, &v));
        EXPECT_EQ(v, 119u);
    }
}

TEST(Integration, DosFloodIsBoundedForPrudence)
{
    // §3.4: a malicious open/close flood. With Prudence the deferred
    // backlog is bounded by latent capacity + slab rings, and memory
    // stays bounded as grace periods cycle.
    RcuConfig rcfg;
    rcfg.gp_interval = std::chrono::microseconds{100};
    RcuDomain rcu(rcfg);
    PrudenceConfig cfg;
    cfg.arena_bytes = 32 << 20;
    cfg.cpus = 2;
    auto alloc = make_prudence_allocator(rcu, cfg);
    CacheId filp = alloc->create_cache("filp", 256);

    std::atomic<std::uint64_t> failures{0};
    std::vector<std::thread> attackers;
    for (int t = 0; t < 2; ++t) {
        attackers.emplace_back([&] {
            for (int i = 0; i < 150000; ++i) {
                void* f = alloc->cache_alloc(filp);
                if (f == nullptr) {
                    failures.fetch_add(1);
                    continue;
                }
                alloc->cache_free_deferred(filp, f);
            }
        });
    }
    for (auto& t : attackers)
        t.join();
    EXPECT_EQ(failures.load(), 0u);
    alloc->quiesce();
    EXPECT_LT(alloc->page_allocator().bytes_in_use(), 8u << 20);
}

TEST(Integration, MultipleAllocatorsCoexist)
{
    // Comparison harnesses run both allocators in one process; their
    // registries, arenas and thread-local caches must not interfere.
    RcuDomain rcu;
    SlubConfig scfg;
    scfg.arena_bytes = 32 << 20;
    scfg.cpus = 2;
    scfg.callback.inline_batch_limit = 10;
    auto slub = make_slub_allocator(rcu, scfg);
    PrudenceConfig pcfg;
    pcfg.arena_bytes = 32 << 20;
    pcfg.cpus = 2;
    auto prud = make_prudence_allocator(rcu, pcfg);

    CacheId cs = slub->create_cache("coexist", 128);
    CacheId cp = prud->create_cache("coexist", 128);
    std::vector<void*> from_slub, from_prud;
    for (int i = 0; i < 1000; ++i) {
        from_slub.push_back(slub->cache_alloc(cs));
        from_prud.push_back(prud->cache_alloc(cp));
    }
    for (void* p : from_slub)
        slub->kfree(p);
    for (void* p : from_prud)
        prud->kfree_deferred(p);
    slub->quiesce();
    prud->quiesce();
    EXPECT_EQ(slub->cache_snapshot(cs).live_objects, 0);
    EXPECT_EQ(prud->cache_snapshot(cp).live_objects, 0);
    EXPECT_EQ(prud->cache_snapshot(cp).deferred_outstanding, 0);
}

}  // namespace
}  // namespace prudence

/**
 * @file
 * Unit and stress tests for the thread-local magazine layer
 * (DESIGN.md §9): capacity clamping, refill/flush batch sizes,
 * deferral-buffer spills, conservative batch epoch tagging, drain on
 * thread exit, and the magazine_capacity = 0 bypass — for both the
 * Prudence allocator and the SLUB baseline.
 *
 * Deterministic tests use a ManualRcuDomain and a single virtual CPU;
 * the introspection hooks magazine_object_count()/magazine_defer_count()
 * read the *calling thread's* magazines, so the expectations below are
 * exact. Note cache_snapshot()/snapshots()/validate()/quiesce() drain
 * the calling thread's magazines first — tests that probe magazine
 * occupancy must do so before snapshotting.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "core/prudence_allocator.h"
#include "rcu/manual_domain.h"
#include "rcu/rcu_domain.h"
#include "slab/geometry.h"
#include "slub/slub_allocator.h"

namespace prudence {
namespace {

/// Deterministic setup: manual epochs, one virtual CPU, no background
/// maintenance, magazines of the given depth. Slab-side block prefill
/// is disabled so cold refills take the legacy locked path whose
/// batch policy these tests pin; the whole-block prefill path is
/// covered in test_lockfree.cc.
PrudenceConfig
mag_config(std::size_t capacity)
{
    PrudenceConfig cfg;
    cfg.arena_bytes = 64 << 20;
    cfg.cpus = 1;
    cfg.maintenance_interval = std::chrono::microseconds{0};
    cfg.magazine_capacity = capacity;
    cfg.depot_prefill_blocks = 0;
    return cfg;
}

// ---------------------------------------------------------------------
// Capacity bounds
// ---------------------------------------------------------------------

TEST(Magazine, CapacityClampedToObjectCacheCapacity)
{
    // 4096-byte objects have a per-CPU cache capacity well below the
    // requested 128, and the magazine must never be deeper than the
    // cache behind it. Observable through the refill batch: the first
    // allocation pulls capacity/2 objects and returns one.
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, mag_config(128));
    CacheId id = alloc.create_cache("clamp", 4096);

    std::size_t cache_cap = compute_slab_geometry(4096).cache_capacity;
    ASSERT_LT(cache_cap, 128u);

    void* p = alloc.cache_alloc(id);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(alloc.magazine_object_count(id), cache_cap / 2 - 1);
    alloc.cache_free(id, p);
}

TEST(Magazine, CapacityNeverExceedsHardCeiling)
{
    // Even when both the knob and the object-cache capacity allow
    // more, the magazine stays within kMaxMagazineCapacity (the
    // flush/spill scratch arrays are sized to it).
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, mag_config(100000));
    CacheId id = alloc.create_cache("ceiling", 64);

    std::size_t cache_cap = compute_slab_geometry(64).cache_capacity;
    std::size_t expect_cap = std::min(cache_cap, kMaxMagazineCapacity);

    void* p = alloc.cache_alloc(id);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(alloc.magazine_object_count(id), expect_cap / 2 - 1);
    alloc.cache_free(id, p);
}

// ---------------------------------------------------------------------
// Refill / flush batch sizes
// ---------------------------------------------------------------------

TEST(Magazine, RefillPullsHalfCapacityBatch)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, mag_config(8));
    CacheId id = alloc.create_cache("refill", 128);

    // Empty magazine: the first alloc refills capacity/2 = 4 objects
    // under one lock acquisition and hands one out.
    std::vector<void*> got;
    got.push_back(alloc.cache_alloc(id));
    ASSERT_NE(got.back(), nullptr);
    EXPECT_EQ(alloc.magazine_object_count(id), 3u);

    // The next three come straight off the magazine...
    for (int i = 0; i < 3; ++i) {
        got.push_back(alloc.cache_alloc(id));
        ASSERT_NE(got.back(), nullptr);
    }
    EXPECT_EQ(alloc.magazine_object_count(id), 0u);

    // ...and the fifth triggers the next half-capacity refill.
    got.push_back(alloc.cache_alloc(id));
    ASSERT_NE(got.back(), nullptr);
    EXPECT_EQ(alloc.magazine_object_count(id), 3u);

    for (void* p : got)
        alloc.cache_free(id, p);
}

TEST(Magazine, OverflowFlushesHalfCapacityPlusOne)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, mag_config(8));
    CacheId id = alloc.create_cache("flush", 128);

    std::vector<void*> held;
    for (int i = 0; i < 16; ++i) {
        held.push_back(alloc.cache_alloc(id));
        ASSERT_NE(held.back(), nullptr);
    }

    // Fill the magazine to its capacity of 8...
    while (alloc.magazine_object_count(id) < 8u) {
        alloc.cache_free(id, held.back());
        held.pop_back();
    }
    // ...then one more free flushes the capacity/2 + 1 = 5 oldest
    // objects to the per-CPU cache and stores the new one: 8 - 5 + 1.
    alloc.cache_free(id, held.back());
    held.pop_back();
    EXPECT_EQ(alloc.magazine_object_count(id), 4u);

    for (void* p : held)
        alloc.cache_free(id, p);
}

TEST(Magazine, DeferBufferSpillsWhenFull)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, mag_config(8));
    CacheId id = alloc.create_cache("spill", 128);

    std::vector<void*> held;
    for (int i = 0; i < 8; ++i) {
        held.push_back(alloc.cache_alloc(id));
        ASSERT_NE(held.back(), nullptr);
    }

    // Seven deferrals sit in the thread-local buffer; nothing has
    // reached the shared latent structures yet.
    for (int i = 0; i < 7; ++i) {
        alloc.cache_free_deferred(id, held.back());
        held.pop_back();
    }
    EXPECT_EQ(alloc.magazine_defer_count(id), 7u);

    // The eighth fills the buffer and spills the whole batch under
    // one epoch read.
    alloc.cache_free_deferred(id, held.back());
    held.pop_back();
    EXPECT_EQ(alloc.magazine_defer_count(id), 0u);
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 8);

    domain.advance();
    alloc.quiesce();
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 0);
    EXPECT_TRUE(alloc.validate().empty());
}

// ---------------------------------------------------------------------
// Batched epoch tagging (conservative, never premature)
// ---------------------------------------------------------------------

TEST(Magazine, SpillTagIsConservative)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, mag_config(8));
    CacheId id = alloc.create_cache("tag", 128);

    void* p = alloc.cache_alloc(id);
    ASSERT_NE(p, nullptr);
    alloc.cache_free_deferred(id, p);

    // The grace period completes while the object is still buffered;
    // the spill below tags the batch with the *current* epoch, which
    // postdates that completion. The object must therefore stay
    // unmerged (delayed reuse is the documented cost of batching)...
    domain.advance();
    alloc.drain_thread();
    alloc.maintenance_pass();
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 1);

    // ...until the *next* grace period covers the batch tag.
    domain.advance();
    alloc.maintenance_pass();
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 0);
    EXPECT_TRUE(alloc.validate().empty());
}

// ---------------------------------------------------------------------
// Per-thread statistics coalescing
// ---------------------------------------------------------------------

TEST(Magazine, StatsFoldAtBatchBoundaries)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, mag_config(8));
    CacheId id = alloc.create_cache("stats", 128);

    std::vector<void*> held;
    for (int i = 0; i < 10; ++i) {
        held.push_back(alloc.cache_alloc(id));
        ASSERT_NE(held.back(), nullptr);
    }
    for (void* p : held)
        alloc.cache_free(id, p);

    // cache_snapshot() drains the calling thread first, so every
    // per-thread delta has been folded in by the time we look.
    CacheStatsSnapshot s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.alloc_calls, 10u);
    EXPECT_EQ(s.free_calls, 10u);
    EXPECT_GT(s.cache_hits, 0u);
    EXPECT_EQ(s.live_objects, 0);
}

// ---------------------------------------------------------------------
// Drain on thread exit
// ---------------------------------------------------------------------

TEST(Magazine, ThreadExitDrainsMagazines)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, mag_config(16));
    CacheId id = alloc.create_cache("exit", 128);

    std::thread worker([&] {
        std::vector<void*> pool;
        for (int i = 0; i < 64; ++i) {
            void* p = alloc.cache_alloc(id);
            ASSERT_NE(p, nullptr);
            pool.push_back(p);
        }
        for (void* p : pool)
            alloc.cache_free(id, p);
        // Exit with a non-empty magazine: the registry's thread-exit
        // hook must flush it, or live_objects stays inflated forever.
    });
    worker.join();

    alloc.quiesce();
    CacheStatsSnapshot s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.live_objects, 0);
    EXPECT_EQ(s.alloc_calls, 64u);
    EXPECT_EQ(s.free_calls, 64u);
    EXPECT_TRUE(alloc.validate().empty());
}

TEST(Magazine, ThreadExitSpillsDeferralBuffer)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, mag_config(16));
    CacheId id = alloc.create_cache("exit_defer", 128);

    std::thread worker([&] {
        for (int i = 0; i < 5; ++i) {
            void* p = alloc.cache_alloc(id);
            ASSERT_NE(p, nullptr);
            alloc.cache_free_deferred(id, p);
        }
        // Exit with 5 buffered deferrals (< the spill threshold).
    });
    worker.join();

    // quiesce() synchronizes a grace period covering the exit-time
    // spill tag, then merges: the accounting must balance exactly.
    alloc.quiesce();
    CacheStatsSnapshot s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.live_objects, 0);
    EXPECT_EQ(s.deferred_outstanding, 0);
    EXPECT_EQ(s.deferred_free_calls, 5u);
    EXPECT_TRUE(alloc.validate().empty());
}

// ---------------------------------------------------------------------
// magazine_capacity = 0 bypass
// ---------------------------------------------------------------------

TEST(Magazine, CapacityZeroBypassesLayer)
{
    ManualRcuDomain domain;
    PrudenceAllocator alloc(domain, mag_config(0));
    CacheId id = alloc.create_cache("bypass", 128);

    void* p = alloc.cache_alloc(id);
    ASSERT_NE(p, nullptr);
    // No thread-local table is ever created; every count is shared
    // and per-operation, exactly as in the pre-magazine allocator.
    EXPECT_EQ(alloc.magazine_object_count(id), 0u);
    EXPECT_EQ(alloc.cache_snapshot(id).live_objects, 1);

    alloc.cache_free_deferred(id, p);
    EXPECT_EQ(alloc.magazine_defer_count(id), 0u);
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 1);

    // Per-op epoch tagging: safe immediately after one grace period.
    domain.advance();
    alloc.maintenance_pass();
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 0);
    EXPECT_TRUE(alloc.validate().empty());
}

// ---------------------------------------------------------------------
// SLUB baseline parity
// ---------------------------------------------------------------------

TEST(Magazine, SlubThreadExitDrainsMagazines)
{
    ManualRcuDomain domain;
    SlubConfig cfg;
    cfg.arena_bytes = 64 << 20;
    cfg.cpus = 1;
    cfg.magazine_capacity = 16;
    SlubAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("slub_exit", 128);

    std::thread worker([&] {
        std::vector<void*> pool;
        for (int i = 0; i < 64; ++i) {
            void* p = alloc.cache_alloc(id);
            ASSERT_NE(p, nullptr);
            pool.push_back(p);
        }
        for (void* p : pool)
            alloc.cache_free(id, p);
    });
    worker.join();

    alloc.quiesce();
    CacheStatsSnapshot s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.live_objects, 0);
    EXPECT_EQ(s.alloc_calls, 64u);
    EXPECT_EQ(s.free_calls, 64u);
    EXPECT_TRUE(alloc.validate().empty());
}

TEST(Magazine, SlubCapacityZeroBypassesLayer)
{
    ManualRcuDomain domain;
    SlubConfig cfg;
    cfg.arena_bytes = 64 << 20;
    cfg.cpus = 1;
    cfg.magazine_capacity = 0;
    SlubAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("slub_bypass", 128);

    void* p = alloc.cache_alloc(id);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(alloc.cache_snapshot(id).live_objects, 1);
    alloc.cache_free(id, p);
    EXPECT_EQ(alloc.cache_snapshot(id).live_objects, 0);
    EXPECT_TRUE(alloc.validate().empty());
}

// ---------------------------------------------------------------------
// Concurrency: more threads than vCPUs hammering every entry point.
// Run under the tsan preset this exercises the registry, the shared
// per-CPU locks under magazine batch traffic, and concurrent
// drain_thread() against the fast paths of other threads.
// ---------------------------------------------------------------------

TEST(MagazineConcurrent, OversubscribedMixedHammer)
{
    RcuConfig rcu;
    rcu.gp_interval = std::chrono::microseconds{50};
    RcuDomain domain(rcu);

    PrudenceConfig cfg;
    cfg.arena_bytes = 256 << 20;
    cfg.cpus = 2;  // deliberately fewer CPUs than threads
    cfg.magazine_capacity = 16;
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("hammer", 192);

    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&alloc, id, t] {
            std::vector<void*> pool;
            std::mt19937 rng(t * 131 + 7);
            for (int i = 0; i < 15000; ++i) {
                int action = static_cast<int>(rng() % 4);
                if (action <= 1 || pool.empty()) {
                    if (void* p = alloc.cache_alloc(id)) {
                        std::memset(p, t + 1, 192);
                        pool.push_back(p);
                    }
                } else if (action == 2) {
                    alloc.cache_free(id, pool.back());
                    pool.pop_back();
                } else {
                    alloc.cache_free_deferred(id, pool.back());
                    pool.pop_back();
                }
                if (i % 4096 == 0)
                    alloc.drain_thread();
            }
            for (void* p : pool)
                alloc.cache_free(id, p);
        });
    }
    for (auto& th : threads)
        th.join();

    alloc.quiesce();
    CacheStatsSnapshot s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.live_objects, 0);
    EXPECT_EQ(s.deferred_outstanding, 0);
    EXPECT_EQ(s.alloc_calls, s.free_calls + s.deferred_free_calls);
    EXPECT_TRUE(alloc.page_allocator().check_integrity());
    EXPECT_TRUE(alloc.validate().empty());
}

}  // namespace
}  // namespace prudence

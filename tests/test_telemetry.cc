/**
 * @file
 * Tests for the telemetry subsystem (DESIGN.md §12): the downsampling
 * time series, the multi-probe Monitor, watermark hysteresis, the
 * exporters (with golden files), the buddy snapshot-coherence
 * contract the probes rely on, the age/section histograms the stamp
 * sites feed, the MemorySampler adapter and the prudstat renderer.
 *
 * Golden files pin the exporter byte format; timestamps are injected
 * through sample_at() so the outputs are fully deterministic (no
 * normalization pass needed). Regenerate after an INTENTIONAL format
 * change with:
 *   PRUDENCE_UPDATE_GOLDEN=1 ./tests/test_telemetry
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/allocator_factory.h"
#include "page/buddy_allocator.h"
#include "rcu/rcu_domain.h"
#include "stats/memory_sampler.h"
#include "telemetry/monitor.h"
#include "telemetry/prudstat.h"
#include "telemetry/telemetry.h"
#include "telemetry/time_series.h"
#include "trace/exporter.h"
#include "trace/metrics_registry.h"
#include "trace/tracer.h"

namespace prudence::telemetry {
namespace {

// ---------------------------------------------------------------------
// TimeSeries: DAMON-style 2:1 downsampling.
// ---------------------------------------------------------------------

TEST(TimeSeries, RawPointsBeforeAnyFold)
{
    TimeSeries ts(8);
    ts.append(100, 7);
    ts.append(200, 9);
    auto pts = ts.points();
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(ts.samples_per_point(), 1u);
    EXPECT_EQ(pts[0].t_first_ns, 100u);
    EXPECT_EQ(pts[0].first, 7u);
    EXPECT_EQ(pts[1].last, 9u);
    EXPECT_EQ(pts[1].count, 1u);
}

TEST(TimeSeries, FoldPreservesFirstLastExtremaAcrossRepeatedFolds)
{
    // 1000 samples into capacity 8: seven-plus folds. The fold must
    // preserve the first and last raw sample, the global extrema, and
    // the total count/sum at every resolution.
    TimeSeries ts(8);
    constexpr std::uint64_t kN = 1000;
    std::uint64_t expect_min = ~0ull, expect_max = 0;
    double expect_sum = 0.0;
    std::uint64_t first_v = 0, last_v = 0;
    for (std::uint64_t i = 0; i < kN; ++i) {
        // Spiky deterministic values: global max planted mid-run,
        // global min near the end, neither at a fold boundary.
        std::uint64_t v = 500 + (i * 37) % 101;
        if (i == 473)
            v = 90000;  // global max
        if (i == 881)
            v = 3;  // global min
        if (i == 0)
            first_v = v;
        last_v = v;
        expect_min = v < expect_min ? v : expect_min;
        expect_max = v > expect_max ? v : expect_max;
        expect_sum += static_cast<double>(v);
        ts.append(1000 + i * 500, v);
    }

    auto pts = ts.points();
    ASSERT_FALSE(pts.empty());
    EXPECT_LE(pts.size(), ts.capacity());
    EXPECT_EQ(ts.total_samples(), kN);

    // samples_per_point doubled some whole number of times.
    std::size_t spp = ts.samples_per_point();
    EXPECT_GT(spp, 1u);
    EXPECT_EQ(spp & (spp - 1), 0u) << "not a power of two: " << spp;

    // First/last raw sample survive verbatim.
    EXPECT_EQ(pts.front().t_first_ns, 1000u);
    EXPECT_EQ(pts.front().first, first_v);
    EXPECT_EQ(pts.back().t_last_ns, 1000u + (kN - 1) * 500);
    EXPECT_EQ(pts.back().last, last_v);

    // Global extrema, count and sum survive aggregation.
    std::uint64_t got_min = ~0ull, got_max = 0, got_count = 0;
    double got_sum = 0.0;
    for (const SeriesPoint& p : pts) {
        got_min = p.min < got_min ? p.min : got_min;
        got_max = p.max > got_max ? p.max : got_max;
        got_count += p.count;
        got_sum += p.sum;
    }
    EXPECT_EQ(got_min, expect_min);
    EXPECT_EQ(got_max, expect_max);
    EXPECT_EQ(got_count, kN);
    EXPECT_DOUBLE_EQ(got_sum, expect_sum);

    // Timestamps stay monotone within and across points.
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_LE(pts[i].t_first_ns, pts[i].t_last_ns) << "point " << i;
        if (i > 0)
            EXPECT_LE(pts[i - 1].t_last_ns, pts[i].t_first_ns)
                << "points " << i - 1 << "/" << i;
    }
}

TEST(TimeSeries, PendingBucketKeepsCoverageComplete)
{
    // After a fold, samples_per_point > 1: a partially-filled pending
    // bucket must still appear in points() so no sample is invisible.
    TimeSeries ts(4);
    for (std::uint64_t i = 0; i < 5; ++i)
        ts.append(i * 10, i);
    auto pts = ts.points();
    std::uint64_t covered = 0;
    for (const SeriesPoint& p : pts)
        covered += p.count;
    EXPECT_EQ(covered, 5u);
    EXPECT_EQ(pts.back().last, 4u);
}

// ---------------------------------------------------------------------
// Monitor: probes, sampling, churn.
// ---------------------------------------------------------------------

TEST(Monitor, SampleAtRecordsEveryProbe)
{
    Monitor m;
    std::atomic<std::uint64_t> v{10};
    ProbeId id = m.add_probe("test.v", "units",
                             [&v] { return v.load(); });
    m.sample_at(1'000'000);
    v.store(30);
    m.sample_at(2'000'000);

    EXPECT_EQ(m.rounds(), 2u);
    EXPECT_EQ(m.start_time_ns(), 1'000'000u);
    SeriesSnapshot s = m.series(id);
    ASSERT_EQ(s.points.size(), 2u);
    EXPECT_EQ(s.points[0].first, 10u);
    EXPECT_EQ(s.points[1].first, 30u);
    EXPECT_EQ(s.total_samples, 2u);

    auto latest = m.latest();
    ASSERT_EQ(latest.size(), 1u);
    EXPECT_EQ(latest[0].first, "test.v");
    EXPECT_EQ(latest[0].second, 30u);
}

TEST(Monitor, RemovedProbeIsNeverCalledAgainButSeriesIsRetained)
{
    Monitor m;
    std::atomic<int> calls{0};
    ProbeId id = m.add_probe("test.gone", "units", [&calls] {
        return static_cast<std::uint64_t>(++calls);
    });
    m.sample_at(1'000'000);
    int calls_at_removal = calls.load();
    m.remove_probe(id);
    m.sample_at(2'000'000);
    m.sample_at(3'000'000);
    EXPECT_EQ(calls.load(), calls_at_removal);

    SeriesSnapshot s = m.series(id);
    EXPECT_FALSE(s.active);
    EXPECT_EQ(s.total_samples, 1u);  // retained for export
    EXPECT_TRUE(m.latest().empty()); // but not a live column
}

TEST(Monitor, ProbeGroupChurnUnderRunningSampler)
{
    // Groups register and unregister while the sampler thread runs —
    // the shape prudstat and per-phase bench probes create. Must not
    // crash, deadlock or call dead closures.
    MonitorConfig cfg;
    cfg.period = std::chrono::microseconds(200);
    Monitor m(cfg);
    m.start();

    std::atomic<bool> stop{false};
    std::thread churn([&] {
        std::mt19937 rng(7);
        for (int round = 0; round < 50; ++round) {
            ProbeGroup group(m);
            for (int p = 0; p < 3; ++p) {
                group.add("churn.p" + std::to_string(p), "units",
                          [round, p] {
                              return static_cast<std::uint64_t>(
                                  round * 10 + p);
                          });
            }
            std::this_thread::sleep_for(
                std::chrono::microseconds(rng() % 400));
        }  // group dtor unregisters concurrently with sampling
        stop.store(true);
    });
    while (!stop.load())
        m.sample_once();
    churn.join();
    m.stop();

    // Every registered probe's series was retained; none is active.
    auto snaps = m.snapshot();
    EXPECT_EQ(snaps.size(), 150u);
    for (const auto& s : snaps)
        EXPECT_FALSE(s.active) << s.name;
}

TEST(Monitor, StartStopArmsAndDisarmsStampSites)
{
    EXPECT_FALSE(active());
    Monitor m;
    m.start();
    EXPECT_TRUE(active());
#if defined(PRUDENCE_TELEMETRY_ENABLED)
    PRUDENCE_TELEM_STAMP(t);
    EXPECT_GT(t, 0u);
    int ran = 0;
    PRUDENCE_TELEM_STMT(ran = 1);
    EXPECT_EQ(ran, 1);
#else
    // OFF build: the statement macro must compile to nothing even
    // with a Monitor running.
    int ran = 0;
    PRUDENCE_TELEM_STMT(ran = 1);
    EXPECT_EQ(ran, 0);
#endif
    m.stop();
    EXPECT_FALSE(active());
}

// ---------------------------------------------------------------------
// Watermark rules: hysteresis, for_at_least, trace/counter/callback.
// ---------------------------------------------------------------------

TEST(Watermark, FiresOncePerExcursionAndRearms)
{
    Monitor m;
    std::atomic<std::uint64_t> v{0};
    m.add_probe("wm.v", "bytes", [&v] { return v.load(); });

    std::vector<std::uint64_t> fired_values;
    WatermarkRule rule;
    rule.probe = "wm.v";
    rule.kind = WatermarkRule::Kind::kAbove;
    rule.threshold = 100;
    rule.on_fire = [&fired_values](const WatermarkRule&,
                                   std::uint64_t value) {
        fired_values.push_back(value);
    };
    std::size_t r = m.add_watermark(rule);

    std::uint64_t t = 1'000'000;
    auto step = [&](std::uint64_t value) {
        v.store(value);
        m.sample_at(t);
        t += 1'000'000;
    };

    step(50);   // below: idle
    step(150);  // breach: fires
    step(200);  // still breaching: no second fire
    step(180);  // still breaching: no second fire
    EXPECT_EQ(m.watermark_fires(r), 1u);
    step(90);   // leaves breach region: re-arms
    EXPECT_EQ(m.watermark_fires(r), 1u);
    step(300);  // new excursion: fires again
    EXPECT_EQ(m.watermark_fires(r), 2u);

    ASSERT_EQ(fired_values.size(), 2u);
    EXPECT_EQ(fired_values[0], 150u);
    EXPECT_EQ(fired_values[1], 300u);
}

TEST(Watermark, ForAtLeastRequiresSustainedBreach)
{
    Monitor m;
    std::atomic<std::uint64_t> v{0};
    m.add_probe("wm.v", "bytes", [&v] { return v.load(); });

    WatermarkRule rule;
    rule.probe = "wm.v";
    rule.threshold = 100;
    rule.for_at_least = std::chrono::milliseconds(10);
    std::size_t r = m.add_watermark(rule);

    auto ms = [](std::uint64_t x) { return x * 1'000'000; };
    v.store(150);
    m.sample_at(ms(0));  // breach begins: pending, not fired
    EXPECT_EQ(m.watermark_fires(r), 0u);
    m.sample_at(ms(5));  // held 5 ms < 10 ms
    EXPECT_EQ(m.watermark_fires(r), 0u);
    m.sample_at(ms(10));  // held 10 ms: fires
    EXPECT_EQ(m.watermark_fires(r), 1u);

    v.store(50);
    m.sample_at(ms(15));  // re-arm; pending clock resets
    v.store(150);
    m.sample_at(ms(20));  // new breach begins
    m.sample_at(ms(25));  // held 5 ms only — the old excursion's
    EXPECT_EQ(m.watermark_fires(r), 1u);  // time must not carry over
    m.sample_at(ms(30));  // held 10 ms: second fire
    EXPECT_EQ(m.watermark_fires(r), 2u);
}

TEST(Watermark, BelowKindFiresOnHeadroomCollapse)
{
    Monitor m;
    std::atomic<std::uint64_t> v{500};
    m.add_probe("wm.headroom", "pages", [&v] { return v.load(); });

    WatermarkRule rule;
    rule.probe = "wm.headroom";
    rule.kind = WatermarkRule::Kind::kBelow;
    rule.threshold = 10;
    std::size_t r = m.add_watermark(rule);

    m.sample_at(1'000'000);
    EXPECT_EQ(m.watermark_fires(r), 0u);
    v.store(3);
    m.sample_at(2'000'000);
    EXPECT_EQ(m.watermark_fires(r), 1u);
}

TEST(Watermark, EmitsTraceEventAndRegistryCounter)
{
    Monitor m;
    std::atomic<std::uint64_t> v{0};
    m.add_probe("wm.latent_bytes", "bytes", [&v] { return v.load(); });
    WatermarkRule rule;
    rule.probe = "wm.latent_bytes";
    rule.threshold = 1000;
    m.add_watermark(rule);

#if defined(PRUDENCE_TRACE_ENABLED)
    trace::start();  // note: a fresh session resets the registry
#endif
    std::uint64_t counter_before = trace::MetricsRegistry::instance()
                                       .counter("telemetry.watermark_fires")
                                       .get();
    v.store(5000);
    m.sample_at(1'000'000);
#if defined(PRUDENCE_TRACE_ENABLED)
    trace::stop();
    std::ostringstream os;
    trace::write_chrome_trace(os);
    EXPECT_NE(os.str().find("\"watermark\""), std::string::npos)
        << "kWatermark event missing from the trace export";
#endif
    EXPECT_EQ(trace::MetricsRegistry::instance()
                  .counter("telemetry.watermark_fires")
                  .get(),
              counter_before + 1);
}

TEST(Watermark, RemoveWatermarkIsABarrierForItsCallback)
{
    Monitor m;
    std::atomic<std::uint64_t> v{5000};
    m.add_probe("wm.sig", "units", [&v] { return v.load(); });

    auto hits = std::make_unique<std::atomic<int>>(0);
    WatermarkRule rule;
    rule.probe = "wm.sig";
    rule.threshold = 1000;
    rule.on_fire = [h = hits.get()](const WatermarkRule&,
                                    std::uint64_t) { h->fetch_add(1); };
    std::size_t r = m.add_watermark(rule);

    m.sample_at(1'000'000);
    EXPECT_EQ(hits->load(), 1);
    EXPECT_EQ(m.watermark_fires(r), 1u);

    // Once remove_watermark() returns, the callback's captured state
    // may be destroyed; further excursions must not evaluate the rule.
    m.remove_watermark(r);
    hits.reset();
    v.store(0);
    m.sample_at(2'000'000);
    v.store(9000);
    m.sample_at(3'000'000);
    EXPECT_EQ(m.watermark_fires(r), 1u)
        << "removed rule evaluated again";
    m.remove_watermark(r);  // idempotent
}

TEST(Watermark, CallbackNeverOutlivesItsProbeGroup)
{
    // Regression: the sampler copies watermark callbacks out of the
    // monitor mutex before invoking them. A ProbeGroup (probes + the
    // group-scoped subsystem state its callbacks capture) torn down
    // between the copy and the invocation must win — the barrier in
    // remove_watermark() has to drop the in-flight copy, or the
    // callback dereferences freed memory. Run under ASan to make the
    // use-after-free loud.
    MonitorConfig cfg;
    cfg.period = std::chrono::microseconds(100);
    Monitor m(cfg);
    m.start();

    std::atomic<std::uint64_t> total_hits{0};
    std::atomic<bool> stop{false};
    std::thread churn([&] {
        for (int round = 0; round < 200; ++round) {
            // Group-scoped state the callback dereferences; freed
            // right after the group (and its watermark) go away.
            auto state = std::make_unique<std::atomic<std::uint64_t>>(0);
            ProbeGroup group(m);
            group.add("churn.wm", "units",
                      [] { return std::uint64_t{5000}; });
            WatermarkRule rule;
            rule.probe = "churn.wm";
            rule.threshold = 1000;
            rule.on_fire = [s = state.get()](const WatermarkRule&,
                                             std::uint64_t value) {
                s->store(value);  // UAF if the barrier is broken
            };
            group.add_watermark(rule);
            std::this_thread::sleep_for(
                std::chrono::microseconds(round % 7 * 50));
            total_hits.fetch_add(state->load() != 0 ? 1 : 0);
        }  // ~ProbeGroup: watermark removed before its probe
        stop.store(true);
    });
    while (!stop.load())
        m.sample_once();
    churn.join();
    m.stop();
    // The rule actually fired across the churn (the callbacks ran);
    // the real assertion is the absence of a crash/ASan report.
    EXPECT_GT(total_hits.load(), 0u);
}

// ---------------------------------------------------------------------
// Exporters: golden files over injected timestamps.
// ---------------------------------------------------------------------

std::string
golden_path(const char* file)
{
    return std::string(PRUDENCE_TEST_GOLDEN_DIR) + "/" + file;
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
check_golden(const std::string& got, const char* golden_file)
{
    std::string path = golden_path(golden_file);
    if (std::getenv("PRUDENCE_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        out << got;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::string want = read_file(path);
    ASSERT_FALSE(want.empty()) << "missing golden file " << path;
    EXPECT_EQ(got, want) << "exporter bytes diverged from " << path
                         << " (PRUDENCE_UPDATE_GOLDEN=1 to regenerate "
                            "after an intentional change)";
}

/// Deterministic two-probe monitor driven via sample_at: capacity 4
/// with 6 rounds forces one 2:1 fold, so the goldens also pin the
/// folded-point formatting.
void
build_golden_monitor(Monitor& m, std::vector<ProbeId>& ids)
{
    static const std::uint64_t kAlpha[] = {10, 20, 30, 25, 40, 15};
    static const std::uint64_t kBeta[] = {1, 1, 2, 3, 5, 8};
    auto step = std::make_shared<std::size_t>(0);  // shared cursor
    ids.push_back(m.add_probe("alpha.bytes", "bytes",
                              [step] { return kAlpha[*step]; }));
    ids.push_back(m.add_probe("beta.objects", "objects", [step] {
        return kBeta[(*step)++ % 6];
    }));
    for (std::uint64_t i = 0; i < 6; ++i)
        m.sample_at(1'000'000'000 + i * 10'000'000);
    m.remove_probe(ids[1]);  // pin the retired-series formatting too
}

TEST(Exporters, GoldenCsv)
{
    MonitorConfig cfg;
    cfg.series_capacity = 4;
    Monitor m(cfg);
    std::vector<ProbeId> ids;
    build_golden_monitor(m, ids);
    std::ostringstream os;
    m.write_csv(os);
    check_golden(os.str(), "telemetry.golden.csv");
}

TEST(Exporters, GoldenJson)
{
    MonitorConfig cfg;
    cfg.series_capacity = 4;
    Monitor m(cfg);
    std::vector<ProbeId> ids;
    build_golden_monitor(m, ids);
    std::ostringstream os;
    m.write_json(os);
    check_golden(os.str(), "telemetry.golden.json");
}

// ---------------------------------------------------------------------
// Buddy snapshot coherence (stats/counters.h contract).
// ---------------------------------------------------------------------

TEST(BuddyCoherence, IdentityHoldsUnderConcurrentChurn)
{
    // free + pcp_cached + used == capacity for EVERY snapshot taken
    // while allocs, frees, PCP refills and drains are in flight.
    BuddyConfig cfg;
    cfg.capacity_bytes = 8 << 20;
    cfg.cpus = 4;
    cfg.pcp_high_watermark = 32;
    cfg.pcp_batch = 8;
    BuddyAllocator buddy(cfg);
    ASSERT_TRUE(buddy.valid());

    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&buddy, &stop, w] {
            std::mt19937 rng(1234 + w);
            std::vector<std::pair<void*, unsigned>> held;
            while (!stop.load(std::memory_order_relaxed)) {
                unsigned order = rng() % 4;
                if (void* p = buddy.alloc_pages(order))
                    held.emplace_back(p, order);
                if (held.size() > 64 || (rng() % 3 == 0 && !held.empty())) {
                    auto [p, o] = held.back();
                    held.pop_back();
                    buddy.free_pages(p, o);
                }
            }
            for (auto [p, o] : held)
                buddy.free_pages(p, o);
        });
    }

    for (int i = 0; i < 300; ++i) {
        BuddyStatsSnapshot s = buddy.stats();
        EXPECT_EQ(static_cast<std::int64_t>(s.free_pages) +
                      s.pcp_cached_pages + s.pages_in_use,
                  static_cast<std::int64_t>(s.capacity_pages))
            << "free=" << s.free_pages << " cached=" << s.pcp_cached_pages
            << " used=" << s.pages_in_use;
        // Per-order blocks fold to the same free_pages total.
        std::size_t from_orders = 0;
        for (unsigned o = 0; o <= kMaxPageOrder; ++o)
            from_orders += s.free_blocks[o] << o;
        EXPECT_EQ(from_orders, s.free_pages);
    }
    stop.store(true);
    for (auto& w : workers)
        w.join();
    EXPECT_TRUE(buddy.check_integrity());
}

// ---------------------------------------------------------------------
// Stamp sites: deferred-age and reader-section histograms.
// ---------------------------------------------------------------------

#if defined(PRUDENCE_TELEMETRY_ENABLED)
TEST(StampSites, DeferredAgeAndReaderSectionHistogramsPopulate)
{
    using trace::HistId;
    using trace::MetricsRegistry;
    auto count = [](HistId id) {
        return MetricsRegistry::instance()
            .histogram(id)
            .snapshot(false)
            .count;
    };
    // Drain whatever earlier tests recorded.
    MetricsRegistry::instance().histogram(HistId::kDeferredAgeNs)
        .snapshot(true);
    MetricsRegistry::instance().histogram(HistId::kReaderSectionNs)
        .snapshot(true);

    Monitor m;
    m.start();  // arms the stamp sites

    RcuConfig rcfg;
    rcfg.gp_interval = std::chrono::microseconds(200);
    RcuDomain rcu(rcfg);
    {
        PrudenceConfig cfg;
        cfg.arena_bytes = 8 << 20;
        auto alloc = make_prudence_allocator(rcu, cfg);
        CacheId id = alloc->create_cache("telem.obj", 64);
        for (int i = 0; i < 200; ++i) {
            void* p = alloc->cache_alloc(id);
            ASSERT_NE(p, nullptr);
            {
                RcuReadGuard guard(rcu);
            }
            alloc->cache_free_deferred(id, p);
        }
        alloc->quiesce();  // merge-on-quiesce records the ages
    }
    m.stop();

    EXPECT_GT(count(HistId::kDeferredAgeNs), 0u)
        << "defer->reclaim stamps did not reach the age histogram";
    EXPECT_GT(count(HistId::kReaderSectionNs), 0u)
        << "read-side sections did not reach the section histogram";
}
#endif  // PRUDENCE_TELEMETRY_ENABLED

// ---------------------------------------------------------------------
// MemorySampler adapter (fig03's probe, now one telemetry probe).
// ---------------------------------------------------------------------

TEST(MemorySamplerAdapter, ProducesMonotoneTimeline)
{
    std::atomic<std::uint64_t> v{42};
    MemorySampler sampler([&v] { return v.load(); },
                          std::chrono::milliseconds(1));
    sampler.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    v.store(99);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    sampler.stop();

    auto samples = sampler.samples();
    ASSERT_GE(samples.size(), 3u);
    EXPECT_GE(samples.front().elapsed_ms, 0.0);
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_LE(samples[i - 1].elapsed_ms, samples[i].elapsed_ms);
    EXPECT_EQ(samples.front().value, 42u);
    EXPECT_EQ(samples.back().value, 99u);
}

// ---------------------------------------------------------------------
// prudstat renderer.
// ---------------------------------------------------------------------

TEST(Prudstat, HumanizeIsExactBelowTenThousand)
{
    EXPECT_EQ(humanize(0), "0");
    EXPECT_EQ(humanize(831), "831");
    EXPECT_EQ(humanize(9999), "9999");
}

TEST(Prudstat, HumanizeScalesByPowersOf1024)
{
    EXPECT_EQ(humanize(10240), "10.0K");
    EXPECT_EQ(humanize(512 * 1024), "512K");
    EXPECT_EQ(humanize(5ull << 30), "5120M");
}

TEST(Prudstat, RendersHeaderAndAlignedRows)
{
    Monitor m;
    std::atomic<std::uint64_t> v{1000};
    m.add_probe("alloc.latent_bytes", "bytes", [&v] { return v.load(); });
    m.add_probe("rcu.grace_periods", "count", [] { return 7ull; });
    m.sample_at(1'000'000);

    PrudstatView view(m);
    std::ostringstream os;
    view.render(os);
    v.store(2'000'000);
    m.sample_at(2'000'000);
    view.render(os);
    EXPECT_EQ(view.rows(), 2u);

    std::string out = os.str();
    // Header labels are probe-name tails; values humanize.
    EXPECT_NE(out.find("latent_bytes"), std::string::npos);
    EXPECT_NE(out.find("grace_period"), std::string::npos);
    EXPECT_NE(out.find("1000"), std::string::npos);
    EXPECT_NE(out.find("1953K"), std::string::npos);

    // Header appears once in the first kHeaderInterval rows.
    auto first = out.find("latent_bytes");
    EXPECT_EQ(out.find("latent_bytes", first + 1), std::string::npos);
}

}  // namespace
}  // namespace prudence::telemetry

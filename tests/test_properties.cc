/**
 * @file
 * Property-based tests: randomized operation sequences checked
 * against an oracle that tracks, for every object, whether it is
 * live, immediately freed, or deferred with a grace-period tag.
 *
 * Invariants enforced on every single allocation (DESIGN.md §6):
 *   1. GP safety  — no allocation returns an object whose deferral
 *      tag has not completed;
 *   2. uniqueness — no object is handed out twice while live;
 *   3. accounting — counters and gauges match the oracle;
 *   4. teardown   — quiesce leaves zero live/deferred objects and an
 *      intact page allocator.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <vector>

#include "api/allocator_factory.h"
#include "page/buddy_allocator.h"
#include "rcu/manual_domain.h"

namespace prudence {
namespace {

enum class Kind { kSlub, kPrudence };

struct Params
{
    Kind kind;
    std::uint64_t seed;
    std::size_t object_size;
};

std::string
param_name(const ::testing::TestParamInfo<Params>& info)
{
    return std::string(info.param.kind == Kind::kSlub ? "slub"
                                                      : "prudence") +
           "_seed" + std::to_string(info.param.seed) + "_size" +
           std::to_string(info.param.object_size);
}

class AllocatorProperty : public ::testing::TestWithParam<Params>
{
};

TEST_P(AllocatorProperty, RandomOpsPreserveInvariants)
{
    const Params& params = GetParam();
    ManualRcuDomain domain;

    std::unique_ptr<Allocator> alloc;
    if (params.kind == Kind::kSlub) {
        SlubConfig cfg;
        cfg.arena_bytes = 64 << 20;
        cfg.cpus = 1;
        cfg.callback.background_drainer = false;
        cfg.callback.inline_batch_limit = 0;
        alloc = make_slub_allocator(domain, cfg);
    } else {
        PrudenceConfig cfg;
        cfg.arena_bytes = 64 << 20;
        cfg.cpus = 1;
        cfg.maintenance_interval = std::chrono::microseconds{0};
        alloc = make_prudence_allocator(domain, cfg);
    }
    CacheId id = alloc->create_cache("prop", params.object_size);

    std::mt19937_64 rng(params.seed);
    std::set<void*> live;
    /// deferred object -> tag at defer time
    std::map<void*, GpEpoch> deferred;

    std::uint64_t allocs = 0, frees = 0, defers = 0;

    for (int step = 0; step < 30000; ++step) {
        int action = static_cast<int>(rng() % 100);
        if (action < 45 || live.empty()) {
            void* p = alloc->cache_alloc(id);
            ASSERT_NE(p, nullptr);
            ++allocs;
            // Invariant 2: never live twice.
            ASSERT_TRUE(live.insert(p).second)
                << "step " << step << ": double handout";
            // Invariant 1: if it was deferred, its tag must have
            // completed.
            auto it = deferred.find(p);
            if (it != deferred.end()) {
                ASSERT_TRUE(domain.is_safe(it->second))
                    << "step " << step
                    << ": reused inside its grace period";
                deferred.erase(it);
            }
        } else if (action < 70) {
            auto it = live.begin();
            std::advance(it, rng() % live.size());
            void* p = *it;
            live.erase(it);
            // Immediately freed objects may be re-handed instantly;
            // remove any stale deferral record (cannot exist, but
            // keeps the oracle honest).
            deferred.erase(p);
            alloc->cache_free(id, p);
            ++frees;
        } else if (action < 95) {
            auto it = live.begin();
            std::advance(it, rng() % live.size());
            void* p = *it;
            live.erase(it);
            deferred[p] = domain.defer_epoch();
            alloc->cache_free_deferred(id, p);
            ++defers;
        } else {
            domain.advance();
            // Deferred entries whose tags are now safe may be
            // recycled from here on; keep them in the map — the
            // alloc-side check handles both cases.
        }
        // Drop safe entries occasionally to bound the oracle.
        if (step % 1000 == 999) {
            for (auto it = deferred.begin(); it != deferred.end();) {
                if (domain.is_safe(it->second))
                    it = deferred.erase(it);
                else
                    ++it;
            }
        }
    }

    // Invariant 3: counters match the oracle.
    auto s = alloc->cache_snapshot(id);
    EXPECT_EQ(s.alloc_calls, allocs);
    EXPECT_EQ(s.free_calls, frees);
    EXPECT_EQ(s.deferred_free_calls, defers);
    EXPECT_EQ(s.live_objects,
              static_cast<std::int64_t>(live.size()));

    // Mid-run deep validation: the allocator is quiescent here
    // (single thread, between operations).
    EXPECT_EQ(alloc->validate(), "");

    // Invariant 4: teardown leaves nothing behind.
    for (void* p : live)
        alloc->cache_free(id, p);
    alloc->quiesce();
    s = alloc->cache_snapshot(id);
    EXPECT_EQ(s.live_objects, 0);
    EXPECT_EQ(s.deferred_outstanding, 0);
    EXPECT_TRUE(alloc->page_allocator().check_integrity());
    EXPECT_EQ(alloc->validate(), "");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocatorProperty,
    ::testing::Values(
        Params{Kind::kSlub, 1, 64}, Params{Kind::kSlub, 2, 256},
        Params{Kind::kSlub, 3, 1024}, Params{Kind::kSlub, 4, 4096},
        Params{Kind::kPrudence, 1, 64},
        Params{Kind::kPrudence, 2, 256},
        Params{Kind::kPrudence, 3, 1024},
        Params{Kind::kPrudence, 4, 4096},
        Params{Kind::kPrudence, 5, 96},
        Params{Kind::kSlub, 5, 96}),
    param_name);

/// kmalloc-ladder property: every size routes to the smallest class
/// that fits, and round-trips bytes intact.
class KmallocProperty
    : public ::testing::TestWithParam<std::pair<Kind, std::uint64_t>>
{
};

TEST_P(KmallocProperty, SizesRouteAndRoundTrip)
{
    auto [kind, seed] = GetParam();
    ManualRcuDomain domain;
    std::unique_ptr<Allocator> alloc;
    if (kind == Kind::kSlub) {
        SlubConfig cfg;
        cfg.arena_bytes = 64 << 20;
        cfg.cpus = 1;
        cfg.callback.background_drainer = false;
        alloc = make_slub_allocator(domain, cfg);
    } else {
        PrudenceConfig cfg;
        cfg.arena_bytes = 64 << 20;
        cfg.cpus = 1;
        cfg.maintenance_interval = std::chrono::microseconds{0};
        alloc = make_prudence_allocator(domain, cfg);
    }

    std::mt19937_64 rng(seed);
    std::vector<std::pair<void*, std::size_t>> objs;
    for (int i = 0; i < 2000; ++i) {
        std::size_t size = 1 + rng() % 8192;
        void* p = alloc->kmalloc(size);
        ASSERT_NE(p, nullptr) << "size " << size;
        // Write the full requested size; any overlap with metadata or
        // a neighbor corrupts something checked later.
        std::memset(p, static_cast<int>(i & 0xFF), size);
        objs.emplace_back(p, size);
    }
    for (std::size_t i = 0; i < objs.size(); ++i) {
        auto [p, size] = objs[i];
        auto* bytes = static_cast<unsigned char*>(p);
        ASSERT_EQ(bytes[0], i & 0xFF) << "size " << size;
        ASSERT_EQ(bytes[size - 1], i & 0xFF) << "size " << size;
        if (i % 2 == 0)
            alloc->kfree(p);
        else
            alloc->kfree_deferred(p);
    }
    alloc->quiesce();
    for (const auto& s : alloc->snapshots()) {
        EXPECT_EQ(s.live_objects, 0) << s.cache_name;
        EXPECT_EQ(s.deferred_outstanding, 0) << s.cache_name;
    }
    EXPECT_EQ(alloc->validate(), "");
}

/**
 * Magazine + PCP accounting identity: random op sequences against the
 * full fast-path stack (thread-local magazines in front of the
 * per-CPU caches, per-CPU page stashes in front of the buddy lock),
 * in every on/off combination. At every drain point —
 * `drain_thread()` followed by enough GP advances to retire the
 * spilled batches — two identities must hold exactly:
 *
 *  - object accounting: `live_objects` equals the oracle's live set
 *    (magazine-held objects moved back at the batch boundary), and
 *  - page accounting: global-free + PCP-cached + used == capacity,
 *    with `check_integrity()` agreeing while the stashes are hot.
 */
struct LayerParams
{
    std::size_t magazine_capacity;
    std::size_t pcp_high_watermark;
    std::uint64_t seed;
};

class LayerAccountingProperty
    : public ::testing::TestWithParam<LayerParams>
{
};

TEST_P(LayerAccountingProperty, DrainPointIdentitiesHold)
{
    const LayerParams& params = GetParam();
    ManualRcuDomain domain;

    PrudenceConfig cfg;
    cfg.arena_bytes = 64 << 20;
    cfg.cpus = 2;
    cfg.magazine_capacity = params.magazine_capacity;
    cfg.pcp_high_watermark = params.pcp_high_watermark;
    cfg.maintenance_interval = std::chrono::microseconds{0};
    std::unique_ptr<Allocator> alloc =
        make_prudence_allocator(domain, cfg);
    CacheId id = alloc->create_cache("layer.prop", 128);
    BuddyAllocator& buddy = alloc->page_allocator();
    const std::size_t capacity = buddy.capacity_pages();

    auto check_page_identity = [&](int step) {
        BuddyStatsSnapshot bs = buddy.stats();
        std::uint64_t free_pages = 0;
        for (unsigned o = 0; o <= kMaxPageOrder; ++o)
            free_pages += buddy.free_blocks(o) << o;
        std::uint64_t cached_pages = 0;
        for (unsigned o = 0; o <= kPcpMaxOrder; ++o)
            cached_pages += buddy.pcp_cached_blocks(o) << o;
        EXPECT_EQ(cached_pages,
                  static_cast<std::uint64_t>(bs.pcp_cached_pages))
            << "step " << step;
        EXPECT_EQ(free_pages + cached_pages +
                      static_cast<std::uint64_t>(bs.pages_in_use),
                  capacity)
            << "step " << step
            << ": free+cached+used != capacity";
        EXPECT_TRUE(buddy.check_integrity()) << "step " << step;
    };

    std::mt19937_64 rng(params.seed);
    std::set<void*> live;
    std::uint64_t defers = 0;

    for (int step = 0; step < 20000; ++step) {
        int action = static_cast<int>(rng() % 100);
        if (action < 50 || live.empty()) {
            void* p = alloc->cache_alloc(id);
            ASSERT_NE(p, nullptr);
            ASSERT_TRUE(live.insert(p).second)
                << "step " << step << ": double handout";
        } else if (action < 72) {
            auto it = live.begin();
            std::advance(it, rng() % live.size());
            void* p = *it;
            live.erase(it);
            alloc->cache_free(id, p);
        } else if (action < 96) {
            auto it = live.begin();
            std::advance(it, rng() % live.size());
            void* p = *it;
            live.erase(it);
            alloc->cache_free_deferred(id, p);
            ++defers;
        } else {
            domain.advance();
        }

        if (step % 2500 == 2499) {
            // Drain point: spill the magazines (alloc-side objects
            // return to the per-CPU cache, deferred batches get their
            // conservative tag), then retire everything spillable.
            alloc->drain_thread();
            domain.advance();
            domain.advance();
            auto s = alloc->cache_snapshot(id);
            EXPECT_EQ(s.live_objects,
                      static_cast<std::int64_t>(live.size()))
                << "step " << step;
            check_page_identity(step);
            EXPECT_EQ(alloc->validate(), "") << "step " << step;
        }
    }

    for (void* p : live)
        alloc->cache_free(id, p);
    alloc->quiesce();
    auto s = alloc->cache_snapshot(id);
    EXPECT_EQ(s.deferred_free_calls, defers);
    EXPECT_EQ(s.live_objects, 0);
    EXPECT_EQ(s.deferred_outstanding, 0);
    check_page_identity(-1);
    // After quiesce the stashes are cold too: the global free lists
    // alone must account for every non-used page.
    std::uint64_t cached_after = 0;
    for (unsigned o = 0; o <= kPcpMaxOrder; ++o)
        cached_after += buddy.pcp_cached_blocks(o) << o;
    EXPECT_EQ(cached_after, 0u);
    EXPECT_EQ(alloc->validate(), "");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayerAccountingProperty,
    ::testing::Values(LayerParams{0, 0, 21}, LayerParams{8, 0, 22},
                      LayerParams{0, 8, 23}, LayerParams{8, 8, 24},
                      LayerParams{32, 32, 25}),
    [](const ::testing::TestParamInfo<LayerParams>& info) {
        return "mag" + std::to_string(info.param.magazine_capacity) +
               "_pcp" +
               std::to_string(info.param.pcp_high_watermark) +
               "_seed" + std::to_string(info.param.seed);
    });

INSTANTIATE_TEST_SUITE_P(
    Sweep, KmallocProperty,
    ::testing::Values(std::make_pair(Kind::kSlub, 11ull),
                      std::make_pair(Kind::kSlub, 12ull),
                      std::make_pair(Kind::kPrudence, 11ull),
                      std::make_pair(Kind::kPrudence, 12ull)),
    [](const auto& info) {
        return std::string(info.param.first == Kind::kSlub
                               ? "slub"
                               : "prudence") +
               "_seed" + std::to_string(info.param.second);
    });

}  // namespace
}  // namespace prudence

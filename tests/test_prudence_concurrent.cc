/**
 * @file
 * Concurrency stress tests for Prudence with a real RCU domain,
 * background grace periods and the maintenance thread enabled.
 *
 * The central assertion is the reader-safety property: an object
 * handed to free_deferred must remain readable (unmodified by reuse)
 * for any reader that acquired it inside a read-side critical section
 * before the deferral.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "core/prudence_allocator.h"
#include "rcu/rcu_domain.h"

namespace prudence {
namespace {

RcuConfig
fast_gp()
{
    RcuConfig cfg;
    cfg.gp_interval = std::chrono::microseconds{50};
    return cfg;
}

TEST(PrudenceConcurrent, MixedAllocFreeDeferStress)
{
    RcuDomain domain(fast_gp());
    PrudenceConfig cfg;
    cfg.arena_bytes = 256 << 20;
    cfg.cpus = 4;
    cfg.maintenance_interval = std::chrono::microseconds{100};
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("stress", 192);

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&alloc, id, t] {
            std::vector<void*> pool;
            std::mt19937 rng(t);
            for (int i = 0; i < 20000; ++i) {
                int action = static_cast<int>(rng() % 3);
                if (action == 0 || pool.empty()) {
                    void* p = alloc.cache_alloc(id);
                    if (p != nullptr) {
                        std::memset(p, t + 1, 192);
                        pool.push_back(p);
                    }
                } else if (action == 1) {
                    alloc.cache_free(id, pool.back());
                    pool.pop_back();
                } else {
                    alloc.cache_free_deferred(id, pool.back());
                    pool.pop_back();
                }
            }
            for (void* p : pool)
                alloc.cache_free(id, p);
        });
    }
    for (auto& th : threads)
        th.join();
    alloc.quiesce();
    auto s = alloc.cache_snapshot(id);
    EXPECT_EQ(s.live_objects, 0);
    EXPECT_EQ(s.deferred_outstanding, 0);
    EXPECT_TRUE(alloc.page_allocator().check_integrity());
}

/**
 * Readers validate a version canary spread across the whole object.
 * A writer continuously replaces the published object, defer-freeing
 * the old one. If Prudence ever reuses an object before its grace
 * period, the new owner's memset tears the canary under a reader
 * still inside its critical section.
 */
TEST(PrudenceConcurrent, ReadersNeverObserveReuse)
{
    struct Payload
    {
        std::uint64_t words[16];
    };

    RcuDomain domain(fast_gp());
    PrudenceConfig cfg;
    cfg.arena_bytes = 256 << 20;
    cfg.cpus = 4;
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("canary", sizeof(Payload));

    std::atomic<Payload*> published{nullptr};
    {
        auto* first = static_cast<Payload*>(alloc.cache_alloc(id));
        ASSERT_NE(first, nullptr);
        for (auto& w : first->words)
            w = 1;
        published.store(first, std::memory_order_release);
    }

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> violations{0};
    std::atomic<std::uint64_t> reads{0};

    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
                RcuReadGuard guard(domain);
                Payload* p = published.load(std::memory_order_acquire);
                std::uint64_t v = p->words[0];
                bool ok = v != 0;
                for (const auto& w : p->words)
                    ok = ok && (w == v);
                if (!ok)
                    violations.fetch_add(1);
                reads.fetch_add(1);
            }
        });
    }

    std::thread writer([&] {
        for (std::uint64_t version = 2; version < 30000; ++version) {
            auto* fresh = static_cast<Payload*>(alloc.cache_alloc(id));
            ASSERT_NE(fresh, nullptr);
            for (auto& w : fresh->words)
                w = version;
            Payload* old =
                published.exchange(fresh, std::memory_order_acq_rel);
            alloc.cache_free_deferred(id, old);
        }
        stop.store(true, std::memory_order_release);
    });

    writer.join();
    for (auto& t : readers)
        t.join();

    EXPECT_EQ(violations.load(), 0u)
        << "an object was reused inside its grace period";
    EXPECT_GT(reads.load(), 0u);

    alloc.cache_free(id, published.load());
    alloc.quiesce();
    EXPECT_EQ(alloc.cache_snapshot(id).deferred_outstanding, 0);
}

TEST(PrudenceConcurrent, ManyCachesManyThreads)
{
    RcuDomain domain(fast_gp());
    PrudenceConfig cfg;
    cfg.arena_bytes = 256 << 20;
    cfg.cpus = 8;
    PrudenceAllocator alloc(domain, cfg);

    std::vector<CacheId> ids;
    for (std::size_t size : {64u, 128u, 256u, 512u, 1024u}) {
        ids.push_back(
            alloc.create_cache("multi-" + std::to_string(size), size));
    }

    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&alloc, &ids, t] {
            std::mt19937 rng(t * 97 + 3);
            std::vector<std::vector<void*>> pools(ids.size());
            for (int i = 0; i < 10000; ++i) {
                std::size_t c = rng() % ids.size();
                int action = static_cast<int>(rng() % 4);
                if (action <= 1 || pools[c].empty()) {
                    if (void* p = alloc.cache_alloc(ids[c]))
                        pools[c].push_back(p);
                } else if (action == 2) {
                    alloc.cache_free(ids[c], pools[c].back());
                    pools[c].pop_back();
                } else {
                    alloc.cache_free_deferred(ids[c], pools[c].back());
                    pools[c].pop_back();
                }
            }
            for (std::size_t c = 0; c < ids.size(); ++c)
                for (void* p : pools[c])
                    alloc.cache_free(ids[c], p);
        });
    }
    for (auto& th : threads)
        th.join();
    alloc.quiesce();
    for (CacheId id : ids) {
        auto s = alloc.cache_snapshot(id);
        EXPECT_EQ(s.live_objects, 0) << s.cache_name;
        EXPECT_EQ(s.deferred_outstanding, 0) << s.cache_name;
    }
    EXPECT_TRUE(alloc.page_allocator().check_integrity());
}

TEST(PrudenceConcurrent, SustainedDeferralReachesEquilibrium)
{
    // The §5.5 endurance property in miniature: continuous
    // alloc + defer at a fixed rate must not grow memory without
    // bound once grace periods cycle.
    RcuDomain domain(fast_gp());
    PrudenceConfig cfg;
    cfg.arena_bytes = 128 << 20;
    cfg.cpus = 2;
    PrudenceAllocator alloc(domain, cfg);
    CacheId id = alloc.create_cache("endure", 512);

    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 100000; ++i) {
                void* p = alloc.cache_alloc(id);
                if (p == nullptr) {
                    failed = true;
                    return;
                }
                alloc.cache_free_deferred(id, p);
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_FALSE(failed.load())
        << "allocator hit OOM despite steady-state deferral";
    alloc.quiesce();
    // Memory returns to a small footprint.
    EXPECT_LT(alloc.page_allocator().bytes_in_use(), 16u << 20);
}

}  // namespace
}  // namespace prudence


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slab/geometry.cc" "src/slab/CMakeFiles/prudence_slab.dir/geometry.cc.o" "gcc" "src/slab/CMakeFiles/prudence_slab.dir/geometry.cc.o.d"
  "/root/repo/src/slab/size_classes.cc" "src/slab/CMakeFiles/prudence_slab.dir/size_classes.cc.o" "gcc" "src/slab/CMakeFiles/prudence_slab.dir/size_classes.cc.o.d"
  "/root/repo/src/slab/slab_header.cc" "src/slab/CMakeFiles/prudence_slab.dir/slab_header.cc.o" "gcc" "src/slab/CMakeFiles/prudence_slab.dir/slab_header.cc.o.d"
  "/root/repo/src/slab/slab_pool.cc" "src/slab/CMakeFiles/prudence_slab.dir/slab_pool.cc.o" "gcc" "src/slab/CMakeFiles/prudence_slab.dir/slab_pool.cc.o.d"
  "/root/repo/src/slab/validate.cc" "src/slab/CMakeFiles/prudence_slab.dir/validate.cc.o" "gcc" "src/slab/CMakeFiles/prudence_slab.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sync/CMakeFiles/prudence_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/prudence_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/page/CMakeFiles/prudence_page.dir/DependInfo.cmake"
  "/root/repo/build/src/rcu/CMakeFiles/prudence_rcu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/prudence_slab.dir/geometry.cc.o"
  "CMakeFiles/prudence_slab.dir/geometry.cc.o.d"
  "CMakeFiles/prudence_slab.dir/size_classes.cc.o"
  "CMakeFiles/prudence_slab.dir/size_classes.cc.o.d"
  "CMakeFiles/prudence_slab.dir/slab_header.cc.o"
  "CMakeFiles/prudence_slab.dir/slab_header.cc.o.d"
  "CMakeFiles/prudence_slab.dir/slab_pool.cc.o"
  "CMakeFiles/prudence_slab.dir/slab_pool.cc.o.d"
  "CMakeFiles/prudence_slab.dir/validate.cc.o"
  "CMakeFiles/prudence_slab.dir/validate.cc.o.d"
  "libprudence_slab.a"
  "libprudence_slab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prudence_slab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libprudence_slab.a"
)

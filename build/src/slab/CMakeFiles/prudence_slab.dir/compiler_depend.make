# Empty compiler generated dependencies file for prudence_slab.
# This may be replaced when dependencies are built.

# Empty dependencies file for prudence_stats.
# This may be replaced when dependencies are built.

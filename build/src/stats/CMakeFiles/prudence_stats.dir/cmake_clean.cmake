file(REMOVE_RECURSE
  "CMakeFiles/prudence_stats.dir/cache_stats.cc.o"
  "CMakeFiles/prudence_stats.dir/cache_stats.cc.o.d"
  "CMakeFiles/prudence_stats.dir/memory_sampler.cc.o"
  "CMakeFiles/prudence_stats.dir/memory_sampler.cc.o.d"
  "libprudence_stats.a"
  "libprudence_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prudence_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/cache_stats.cc" "src/stats/CMakeFiles/prudence_stats.dir/cache_stats.cc.o" "gcc" "src/stats/CMakeFiles/prudence_stats.dir/cache_stats.cc.o.d"
  "/root/repo/src/stats/memory_sampler.cc" "src/stats/CMakeFiles/prudence_stats.dir/memory_sampler.cc.o" "gcc" "src/stats/CMakeFiles/prudence_stats.dir/memory_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sync/CMakeFiles/prudence_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

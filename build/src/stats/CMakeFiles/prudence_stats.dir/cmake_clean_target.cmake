file(REMOVE_RECURSE
  "libprudence_stats.a"
)

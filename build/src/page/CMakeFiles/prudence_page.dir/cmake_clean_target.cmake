file(REMOVE_RECURSE
  "libprudence_page.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/prudence_page.dir/arena.cc.o"
  "CMakeFiles/prudence_page.dir/arena.cc.o.d"
  "CMakeFiles/prudence_page.dir/buddy_allocator.cc.o"
  "CMakeFiles/prudence_page.dir/buddy_allocator.cc.o.d"
  "libprudence_page.a"
  "libprudence_page.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prudence_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

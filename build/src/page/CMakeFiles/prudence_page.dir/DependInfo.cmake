
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/page/arena.cc" "src/page/CMakeFiles/prudence_page.dir/arena.cc.o" "gcc" "src/page/CMakeFiles/prudence_page.dir/arena.cc.o.d"
  "/root/repo/src/page/buddy_allocator.cc" "src/page/CMakeFiles/prudence_page.dir/buddy_allocator.cc.o" "gcc" "src/page/CMakeFiles/prudence_page.dir/buddy_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sync/CMakeFiles/prudence_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/prudence_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for prudence_page.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for prudence_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/prudence_core.dir/prudence_allocator.cc.o"
  "CMakeFiles/prudence_core.dir/prudence_allocator.cc.o.d"
  "libprudence_core.a"
  "libprudence_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prudence_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

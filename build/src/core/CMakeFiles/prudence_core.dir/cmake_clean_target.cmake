file(REMOVE_RECURSE
  "libprudence_core.a"
)

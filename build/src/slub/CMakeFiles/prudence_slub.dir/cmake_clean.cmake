file(REMOVE_RECURSE
  "CMakeFiles/prudence_slub.dir/slub_allocator.cc.o"
  "CMakeFiles/prudence_slub.dir/slub_allocator.cc.o.d"
  "libprudence_slub.a"
  "libprudence_slub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prudence_slub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

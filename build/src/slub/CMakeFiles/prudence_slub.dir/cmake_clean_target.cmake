file(REMOVE_RECURSE
  "libprudence_slub.a"
)

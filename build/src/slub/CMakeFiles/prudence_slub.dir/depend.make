# Empty dependencies file for prudence_slub.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/prudence_api.dir/allocator_factory.cc.o"
  "CMakeFiles/prudence_api.dir/allocator_factory.cc.o.d"
  "libprudence_api.a"
  "libprudence_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prudence_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for prudence_api.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libprudence_api.a"
)

file(REMOVE_RECURSE
  "libprudence_rcu.a"
)

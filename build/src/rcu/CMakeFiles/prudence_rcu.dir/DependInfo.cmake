
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rcu/callback_engine.cc" "src/rcu/CMakeFiles/prudence_rcu.dir/callback_engine.cc.o" "gcc" "src/rcu/CMakeFiles/prudence_rcu.dir/callback_engine.cc.o.d"
  "/root/repo/src/rcu/manual_domain.cc" "src/rcu/CMakeFiles/prudence_rcu.dir/manual_domain.cc.o" "gcc" "src/rcu/CMakeFiles/prudence_rcu.dir/manual_domain.cc.o.d"
  "/root/repo/src/rcu/qsbr_domain.cc" "src/rcu/CMakeFiles/prudence_rcu.dir/qsbr_domain.cc.o" "gcc" "src/rcu/CMakeFiles/prudence_rcu.dir/qsbr_domain.cc.o.d"
  "/root/repo/src/rcu/rcu_domain.cc" "src/rcu/CMakeFiles/prudence_rcu.dir/rcu_domain.cc.o" "gcc" "src/rcu/CMakeFiles/prudence_rcu.dir/rcu_domain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sync/CMakeFiles/prudence_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/prudence_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/prudence_rcu.dir/callback_engine.cc.o"
  "CMakeFiles/prudence_rcu.dir/callback_engine.cc.o.d"
  "CMakeFiles/prudence_rcu.dir/manual_domain.cc.o"
  "CMakeFiles/prudence_rcu.dir/manual_domain.cc.o.d"
  "CMakeFiles/prudence_rcu.dir/qsbr_domain.cc.o"
  "CMakeFiles/prudence_rcu.dir/qsbr_domain.cc.o.d"
  "CMakeFiles/prudence_rcu.dir/rcu_domain.cc.o"
  "CMakeFiles/prudence_rcu.dir/rcu_domain.cc.o.d"
  "libprudence_rcu.a"
  "libprudence_rcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prudence_rcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for prudence_rcu.
# This may be replaced when dependencies are built.

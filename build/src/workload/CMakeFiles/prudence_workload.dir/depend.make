# Empty dependencies file for prudence_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libprudence_workload.a"
)

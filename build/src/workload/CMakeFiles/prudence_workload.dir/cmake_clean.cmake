file(REMOVE_RECURSE
  "CMakeFiles/prudence_workload.dir/benchmarks.cc.o"
  "CMakeFiles/prudence_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/prudence_workload.dir/engine.cc.o"
  "CMakeFiles/prudence_workload.dir/engine.cc.o.d"
  "CMakeFiles/prudence_workload.dir/report.cc.o"
  "CMakeFiles/prudence_workload.dir/report.cc.o.d"
  "CMakeFiles/prudence_workload.dir/suite.cc.o"
  "CMakeFiles/prudence_workload.dir/suite.cc.o.d"
  "libprudence_workload.a"
  "libprudence_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prudence_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

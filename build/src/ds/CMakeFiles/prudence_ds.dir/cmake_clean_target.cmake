file(REMOVE_RECURSE
  "libprudence_ds.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/prudence_ds.dir/ds.cc.o"
  "CMakeFiles/prudence_ds.dir/ds.cc.o.d"
  "libprudence_ds.a"
  "libprudence_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prudence_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for prudence_ds.
# This may be replaced when dependencies are built.

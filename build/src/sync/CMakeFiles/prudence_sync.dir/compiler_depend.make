# Empty compiler generated dependencies file for prudence_sync.
# This may be replaced when dependencies are built.

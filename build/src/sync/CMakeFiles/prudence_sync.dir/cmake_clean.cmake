file(REMOVE_RECURSE
  "CMakeFiles/prudence_sync.dir/cpu_registry.cc.o"
  "CMakeFiles/prudence_sync.dir/cpu_registry.cc.o.d"
  "CMakeFiles/prudence_sync.dir/thread_registry.cc.o"
  "CMakeFiles/prudence_sync.dir/thread_registry.cc.o.d"
  "libprudence_sync.a"
  "libprudence_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prudence_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

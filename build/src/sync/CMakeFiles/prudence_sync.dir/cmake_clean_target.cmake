file(REMOVE_RECURSE
  "libprudence_sync.a"
)

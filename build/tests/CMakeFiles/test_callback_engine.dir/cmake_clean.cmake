file(REMOVE_RECURSE
  "CMakeFiles/test_callback_engine.dir/test_callback_engine.cc.o"
  "CMakeFiles/test_callback_engine.dir/test_callback_engine.cc.o.d"
  "test_callback_engine"
  "test_callback_engine.pdb"
  "test_callback_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_callback_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_callback_engine.
# This may be replaced when dependencies are built.

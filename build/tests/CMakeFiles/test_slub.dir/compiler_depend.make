# Empty compiler generated dependencies file for test_slub.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_slub.dir/test_slub.cc.o"
  "CMakeFiles/test_slub.dir/test_slub.cc.o.d"
  "test_slub"
  "test_slub.pdb"
  "test_slub[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_prudence.
# This may be replaced when dependencies are built.

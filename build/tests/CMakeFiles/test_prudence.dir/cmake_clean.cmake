file(REMOVE_RECURSE
  "CMakeFiles/test_prudence.dir/test_prudence.cc.o"
  "CMakeFiles/test_prudence.dir/test_prudence.cc.o.d"
  "test_prudence"
  "test_prudence.pdb"
  "test_prudence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prudence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

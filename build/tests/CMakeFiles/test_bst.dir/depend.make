# Empty dependencies file for test_bst.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_qsbr.dir/test_qsbr.cc.o"
  "CMakeFiles/test_qsbr.dir/test_qsbr.cc.o.d"
  "test_qsbr"
  "test_qsbr.pdb"
  "test_qsbr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qsbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_ds.
# This may be replaced when dependencies are built.

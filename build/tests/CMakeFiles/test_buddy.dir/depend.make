# Empty dependencies file for test_buddy.
# This may be replaced when dependencies are built.

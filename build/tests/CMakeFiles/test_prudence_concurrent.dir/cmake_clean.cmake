file(REMOVE_RECURSE
  "CMakeFiles/test_prudence_concurrent.dir/test_prudence_concurrent.cc.o"
  "CMakeFiles/test_prudence_concurrent.dir/test_prudence_concurrent.cc.o.d"
  "test_prudence_concurrent"
  "test_prudence_concurrent.pdb"
  "test_prudence_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prudence_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_typed_cache.cc" "tests/CMakeFiles/test_typed_cache.dir/test_typed_cache.cc.o" "gcc" "tests/CMakeFiles/test_typed_cache.dir/test_typed_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/prudence_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ds/CMakeFiles/prudence_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/prudence_api.dir/DependInfo.cmake"
  "/root/repo/build/src/slub/CMakeFiles/prudence_slub.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prudence_core.dir/DependInfo.cmake"
  "/root/repo/build/src/slab/CMakeFiles/prudence_slab.dir/DependInfo.cmake"
  "/root/repo/build/src/page/CMakeFiles/prudence_page.dir/DependInfo.cmake"
  "/root/repo/build/src/rcu/CMakeFiles/prudence_rcu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/prudence_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/prudence_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for test_typed_cache.
# This may be replaced when dependencies are built.

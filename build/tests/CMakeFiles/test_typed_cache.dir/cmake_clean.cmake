file(REMOVE_RECURSE
  "CMakeFiles/test_typed_cache.dir/test_typed_cache.cc.o"
  "CMakeFiles/test_typed_cache.dir/test_typed_cache.cc.o.d"
  "test_typed_cache"
  "test_typed_cache.pdb"
  "test_typed_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_typed_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_rcu.dir/test_rcu.cc.o"
  "CMakeFiles/test_rcu.dir/test_rcu.cc.o.d"
  "test_rcu"
  "test_rcu.pdb"
  "test_rcu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

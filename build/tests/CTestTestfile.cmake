# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_buddy[1]_include.cmake")
include("/root/repo/build/tests/test_rcu[1]_include.cmake")
include("/root/repo/build/tests/test_qsbr[1]_include.cmake")
include("/root/repo/build/tests/test_callback_engine[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_bst[1]_include.cmake")
include("/root/repo/build/tests/test_mechanisms[1]_include.cmake")
include("/root/repo/build/tests/test_typed_cache[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_slab[1]_include.cmake")
include("/root/repo/build/tests/test_slub[1]_include.cmake")
include("/root/repo/build/tests/test_prudence[1]_include.cmake")
include("/root/repo/build/tests/test_prudence_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_ds[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")

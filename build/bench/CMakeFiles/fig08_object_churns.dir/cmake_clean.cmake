file(REMOVE_RECURSE
  "CMakeFiles/fig08_object_churns.dir/fig08_object_churns.cc.o"
  "CMakeFiles/fig08_object_churns.dir/fig08_object_churns.cc.o.d"
  "fig08_object_churns"
  "fig08_object_churns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_object_churns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

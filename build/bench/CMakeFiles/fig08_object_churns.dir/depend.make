# Empty dependencies file for fig08_object_churns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig11_fragmentation.dir/fig11_fragmentation.cc.o"
  "CMakeFiles/fig11_fragmentation.dir/fig11_fragmentation.cc.o.d"
  "fig11_fragmentation"
  "fig11_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

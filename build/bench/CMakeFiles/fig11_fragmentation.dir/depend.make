# Empty dependencies file for fig11_fragmentation.
# This may be replaced when dependencies are built.

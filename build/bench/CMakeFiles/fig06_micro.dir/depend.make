# Empty dependencies file for fig06_micro.
# This may be replaced when dependencies are built.

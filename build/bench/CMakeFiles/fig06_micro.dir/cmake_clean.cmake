file(REMOVE_RECURSE
  "CMakeFiles/fig06_micro.dir/fig06_micro.cc.o"
  "CMakeFiles/fig06_micro.dir/fig06_micro.cc.o.d"
  "fig06_micro"
  "fig06_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

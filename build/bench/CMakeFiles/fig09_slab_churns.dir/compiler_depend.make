# Empty compiler generated dependencies file for fig09_slab_churns.
# This may be replaced when dependencies are built.

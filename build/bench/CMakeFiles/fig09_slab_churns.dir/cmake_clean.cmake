file(REMOVE_RECURSE
  "CMakeFiles/fig09_slab_churns.dir/fig09_slab_churns.cc.o"
  "CMakeFiles/fig09_slab_churns.dir/fig09_slab_churns.cc.o.d"
  "fig09_slab_churns"
  "fig09_slab_churns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_slab_churns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig07_cache_hits.
# This may be replaced when dependencies are built.

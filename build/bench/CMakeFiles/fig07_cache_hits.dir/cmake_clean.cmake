file(REMOVE_RECURSE
  "CMakeFiles/fig07_cache_hits.dir/fig07_cache_hits.cc.o"
  "CMakeFiles/fig07_cache_hits.dir/fig07_cache_hits.cc.o.d"
  "fig07_cache_hits"
  "fig07_cache_hits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cache_hits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

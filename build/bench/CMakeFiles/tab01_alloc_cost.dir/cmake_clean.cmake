file(REMOVE_RECURSE
  "CMakeFiles/tab01_alloc_cost.dir/tab01_alloc_cost.cc.o"
  "CMakeFiles/tab01_alloc_cost.dir/tab01_alloc_cost.cc.o.d"
  "tab01_alloc_cost"
  "tab01_alloc_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_alloc_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tab01_alloc_cost.
# This may be replaced when dependencies are built.

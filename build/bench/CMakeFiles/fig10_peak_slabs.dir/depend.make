# Empty dependencies file for fig10_peak_slabs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig10_peak_slabs.dir/fig10_peak_slabs.cc.o"
  "CMakeFiles/fig10_peak_slabs.dir/fig10_peak_slabs.cc.o.d"
  "fig10_peak_slabs"
  "fig10_peak_slabs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_peak_slabs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig03_endurance.
# This may be replaced when dependencies are built.

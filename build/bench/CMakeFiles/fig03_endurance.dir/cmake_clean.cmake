file(REMOVE_RECURSE
  "CMakeFiles/fig03_endurance.dir/fig03_endurance.cc.o"
  "CMakeFiles/fig03_endurance.dir/fig03_endurance.cc.o.d"
  "fig03_endurance"
  "fig03_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

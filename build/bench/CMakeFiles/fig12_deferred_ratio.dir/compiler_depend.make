# Empty compiler generated dependencies file for fig12_deferred_ratio.
# This may be replaced when dependencies are built.

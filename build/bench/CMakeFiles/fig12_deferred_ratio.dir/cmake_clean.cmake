file(REMOVE_RECURSE
  "CMakeFiles/fig12_deferred_ratio.dir/fig12_deferred_ratio.cc.o"
  "CMakeFiles/fig12_deferred_ratio.dir/fig12_deferred_ratio.cc.o.d"
  "fig12_deferred_ratio"
  "fig12_deferred_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_deferred_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

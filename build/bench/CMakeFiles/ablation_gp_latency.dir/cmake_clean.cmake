file(REMOVE_RECURSE
  "CMakeFiles/ablation_gp_latency.dir/ablation_gp_latency.cc.o"
  "CMakeFiles/ablation_gp_latency.dir/ablation_gp_latency.cc.o.d"
  "ablation_gp_latency"
  "ablation_gp_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gp_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

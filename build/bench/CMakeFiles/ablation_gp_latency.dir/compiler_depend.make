# Empty compiler generated dependencies file for ablation_gp_latency.
# This may be replaced when dependencies are built.

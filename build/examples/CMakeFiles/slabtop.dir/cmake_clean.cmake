file(REMOVE_RECURSE
  "CMakeFiles/slabtop.dir/slabtop.cpp.o"
  "CMakeFiles/slabtop.dir/slabtop.cpp.o.d"
  "slabtop"
  "slabtop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slabtop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

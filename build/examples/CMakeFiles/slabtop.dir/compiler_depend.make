# Empty compiler generated dependencies file for slabtop.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dos_endurance.
# This may be replaced when dependencies are built.

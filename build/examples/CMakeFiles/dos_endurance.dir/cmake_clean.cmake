file(REMOVE_RECURSE
  "CMakeFiles/dos_endurance.dir/dos_endurance.cpp.o"
  "CMakeFiles/dos_endurance.dir/dos_endurance.cpp.o.d"
  "dos_endurance"
  "dos_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dos_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rcu_routing_table.dir/rcu_routing_table.cpp.o"
  "CMakeFiles/rcu_routing_table.dir/rcu_routing_table.cpp.o.d"
  "rcu_routing_table"
  "rcu_routing_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcu_routing_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rcu_routing_table.
# This may be replaced when dependencies are built.

# Empty dependencies file for file_table_churn.
# This may be replaced when dependencies are built.

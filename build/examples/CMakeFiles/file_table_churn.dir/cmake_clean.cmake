file(REMOVE_RECURSE
  "CMakeFiles/file_table_churn.dir/file_table_churn.cpp.o"
  "CMakeFiles/file_table_churn.dir/file_table_churn.cpp.o.d"
  "file_table_churn"
  "file_table_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_table_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

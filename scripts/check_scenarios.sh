#!/bin/sh
# Scenario smoke (DESIGN.md §15): run the stock load-engine scenarios
# end to end through `prudtorture --scenario`, which layers the full
# invariant battery on top of the run — allocator validate(), buddy
# integrity, zero live/deferred objects after teardown, histogram
# count == completed requests, and the offline ShardScript replay
# audit (per-shard op counts and fingerprints must match the live
# run). Each stock scenario is a ~2 s scheduled leg.
#
# CI runs this under the default and asan presets for all three
# scenarios, and under tsan for the burst leg only (the paced 2 s
# schedule keeps tsan runtime bounded).
#
# Usage: scripts/check_scenarios.sh [preset] [scenario...]
#   preset      default | asan | tsan   (default: default)
#   scenario    stock names or DSL files (default: burst diurnal churn)
# Environment:
#   DURATION_MS  override each scenario's scheduled duration
#   ALLOCATORS   allocator kinds to exercise (default: "prudence slub")
#   JOBS         parallel build jobs (default: 2)
set -eu

cd "$(dirname "$0")/.."

PRESET="${1:-default}"
[ $# -gt 0 ] && shift

case "$PRESET" in
default) BUILD_DIR=build ;;
*) BUILD_DIR="build-$PRESET" ;;
esac

SCENARIOS="${*:-burst diurnal churn}"
ALLOCATORS="${ALLOCATORS:-prudence slub}"

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "${JOBS:-2}" --target prudtorture

for scenario in $SCENARIOS; do
    for alloc in $ALLOCATORS; do
        echo "== scenario $scenario / $alloc ($PRESET) =="
        "$BUILD_DIR/tools/prudtorture" \
            --scenario="$scenario" --allocator="$alloc" \
            ${DURATION_MS:+--scenario-duration-ms="$DURATION_MS"}
    done
done
echo "check_scenarios: all legs passed ($PRESET: $SCENARIOS)"

#!/bin/sh
# Build a preset and run the schedfuzz deterministic-schedule sweeps
# (DESIGN.md §11). First the self-test proves the fuzzer can still
# catch deliberately-reintroduced interleaving bugs (stale spill tag,
# unprotected depot pop) and that the clean code passes the same
# sweep; then seven real sweeps cover the default config plus the
# magazines-off, pcp-off, lockfree-off, harvest-ahead-off,
# prefill-off and claim-ring-off ablations, so the per-op paths see
# the same schedule perturbation.
#
# Any failing sweep leaves a JSON report (seed, yield-site mask,
# shrunk minimal mask, first violation) in REPORT_DIR for upload as a
# CI artifact; the report's "seed"/"shrunk_sites" fields are a ready
# replay command line.
#
# Usage: scripts/check_schedfuzz.sh [preset] [extra schedfuzz args...]
#   preset      default | asan | tsan          (default: default)
# Environment:
#   SEEDS       sweep width per config          (default: 20)
#   OPS         deferrals per updater per seed  (default: 300)
#   JOBS        parallel build jobs             (default: 2)
#   REPORT_DIR  where failing-seed reports go   (default: build dir)
set -eu

cd "$(dirname "$0")/.."

PRESET="${1:-default}"
[ $# -gt 0 ] && shift

case "$PRESET" in
default) BUILD_DIR=build ;;
*) BUILD_DIR="build-$PRESET" ;;
esac

SEEDS="${SEEDS:-20}"
OPS="${OPS:-300}"
REPORT_DIR="${REPORT_DIR:-$BUILD_DIR}"
mkdir -p "$REPORT_DIR"

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "${JOBS:-2}"

echo "== schedfuzz self-test (bug must be found, clean code clean) =="
"$BUILD_DIR/tools/schedfuzz" --self-test --seeds="$SEEDS" --ops="$OPS" \
    --report="$REPORT_DIR/schedfuzz-selftest.json" "$@"

echo "== schedfuzz sweep: default config =="
"$BUILD_DIR/tools/schedfuzz" --seeds="$SEEDS" --ops="$OPS" \
    --report="$REPORT_DIR/schedfuzz-default.json" "$@"

echo "== schedfuzz sweep: magazines off =="
"$BUILD_DIR/tools/schedfuzz" --seeds="$SEEDS" --ops="$OPS" \
    --magazine-capacity=0 \
    --report="$REPORT_DIR/schedfuzz-nomag.json" "$@"

echo "== schedfuzz sweep: per-CPU page caches off =="
"$BUILD_DIR/tools/schedfuzz" --seeds="$SEEDS" --ops="$OPS" \
    --pcp-high-watermark=0 \
    --report="$REPORT_DIR/schedfuzz-nopcp.json" "$@"

echo "== schedfuzz sweep: lock-free per-CPU layer off =="
"$BUILD_DIR/tools/schedfuzz" --seeds="$SEEDS" --ops="$OPS" \
    --lockfree-pcpu=0 \
    --report="$REPORT_DIR/schedfuzz-nolockfree.json" "$@"

echo "== schedfuzz sweep: harvest-ahead off =="
"$BUILD_DIR/tools/schedfuzz" --seeds="$SEEDS" --ops="$OPS" \
    --harvest-ahead=0 \
    --report="$REPORT_DIR/schedfuzz-noharvest.json" "$@"

echo "== schedfuzz sweep: slab-side prefill off =="
"$BUILD_DIR/tools/schedfuzz" --seeds="$SEEDS" --ops="$OPS" \
    --depot-prefill=0 \
    --report="$REPORT_DIR/schedfuzz-noprefill.json" "$@"

echo "== schedfuzz sweep: claim ring off =="
"$BUILD_DIR/tools/schedfuzz" --seeds="$SEEDS" --ops="$OPS" \
    --claim-ring=0 \
    --report="$REPORT_DIR/schedfuzz-noclaim.json" "$@"

echo "schedfuzz: self-test + 7x$SEEDS-seed sweeps clean"

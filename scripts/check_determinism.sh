#!/bin/sh
# Determinism regression (process-level twin of tests/test_determinism):
# two `prudtorture --deterministic` runs with the same --fault-seed
# must produce byte-identical JSON reports — every fault site's
# evaluation count, trigger count and decision fingerprint, and every
# accounting counter in the final snapshots. A third run with a
# different seed must NOT match, otherwise the check is vacuous.
#
# Usage: scripts/check_determinism.sh [preset] [extra prudtorture args...]
#   preset    default | asan | tsan   (default: default)
# Environment:
#   SEED      fault seed              (default: 42)
#   OPS       updates per run         (default: 50000)
#   JOBS      parallel build jobs     (default: 2)
set -eu

cd "$(dirname "$0")/.."

PRESET="${1:-default}"
[ $# -gt 0 ] && shift

case "$PRESET" in
default) BUILD_DIR=build ;;
*) BUILD_DIR="build-$PRESET" ;;
esac

SEED="${SEED:-42}"
OPS="${OPS:-50000}"

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "${JOBS:-2}"

run() {
    run_seed="$1"
    run_out="$2"
    shift 2
    "$BUILD_DIR/tools/prudtorture" --deterministic --ops="$OPS" \
        --fault-seed="$run_seed" --report-json="$run_out" "$@" \
        >/dev/null
}

echo "== determinism: two runs at seed $SEED must match =="
run "$SEED" "$BUILD_DIR/det-a.json" "$@"
run "$SEED" "$BUILD_DIR/det-b.json" "$@"
if ! diff -u "$BUILD_DIR/det-a.json" "$BUILD_DIR/det-b.json"; then
    echo "FAIL: same seed produced different fingerprints/accounting"
    exit 1
fi
echo "identical: fingerprints + accounting reproduce"

echo "== determinism: seed $((SEED + 1)) must diverge =="
run "$((SEED + 1))" "$BUILD_DIR/det-c.json" "$@"
if diff -q "$BUILD_DIR/det-a.json" "$BUILD_DIR/det-c.json" >/dev/null; then
    echo "FAIL: different seeds produced identical reports (vacuous)"
    exit 1
fi
echo "diverged: seed actually drives the decision stream"

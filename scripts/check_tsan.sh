#!/bin/sh
# Build the tree under ThreadSanitizer with tracing compiled in and
# run the tier-1 test suite. This is the race check for the
# observability layer: the tracepoints fire on every allocator and
# RCU hot path, so a green run covers the ring/registry concurrency.
#
# Usage: scripts/check_tsan.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "${JOBS:-2}"

# Second-order races surface more readily with histories retained.
TSAN_OPTIONS="${TSAN_OPTIONS:-history_size=5}" \
    ctest --preset tsan -j "${JOBS:-2}" "$@"

#!/bin/sh
# Telemetry sampler overhead + artifact check (DESIGN.md §12).
#
# A/B: runs fig13_throughput RUNS times without telemetry and RUNS
# times with a live 10 ms monitor (--telemetry=), takes the median
# total prudence ops/s of each side and requires the delta to stay
# under TOLERANCE_PCT (the design budget is < 1%: one steady-clock
# read per stamp site plus a 100 Hz sampler thread must not move
# allocator throughput).
#
# Also validates the artifact path end to end: a fig03-length run
# with --telemetry= must produce parseable JSON containing the RSS,
# latent-bytes and deferred-age series with a bounded point count.
#
# Shared-runner numbers are noisy, so the overhead bound only FAILS
# the script under --strict; the default mode prints the delta and
# always exits 0 (the artifact checks are always fatal).
#
# Usage: scripts/check_telemetry.sh [--strict] [preset]
# Environment:
#   SCALE          fig13/fig03 workload scale   (default: 0.1)
#   RUNS           runs per side, median taken  (default: 3)
#   TOLERANCE_PCT  allowed throughput delta     (default: 1.0)
#   JOBS           parallel build jobs          (default: 2)
set -eu

cd "$(dirname "$0")/.."

STRICT=0
PRESET=default
for arg in "$@"; do
    case "$arg" in
    --strict) STRICT=1 ;;
    *) PRESET="$arg" ;;
    esac
done
case "$PRESET" in
default) BUILD_DIR=build ;;
*) BUILD_DIR="build-$PRESET" ;;
esac

SCALE="${SCALE:-0.1}"
RUNS="${RUNS:-3}"
TOLERANCE_PCT="${TOLERANCE_PCT:-1.0}"

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "${JOBS:-2}" \
    --target fig13_throughput fig03_endurance

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Total prudence ops/s across fig13's workload rows
# (rows: "<workload> <slub_ops> <prudence_ops> <improve%> ...").
fig13_total() {
    awk '/^[a-z][a-z0-9_]* +[0-9.]+ +[0-9.]+ +-?[0-9.]+/ \
        { sum += $3 } END { printf "%.0f\n", sum }' "$1"
}

median() {
    sort -n "$1" | awk '{ v[NR] = $1 }
        END { print (NR % 2) ? v[(NR + 1) / 2] \
                             : (v[NR / 2] + v[NR / 2 + 1]) / 2 }'
}

echo "== fig13 A/B: ${RUNS}x plain vs ${RUNS}x with live monitor =="
: > "$TMP/plain.txt"
: > "$TMP/telem.txt"
i=0
while [ "$i" -lt "$RUNS" ]; do
    "$BUILD_DIR/bench/fig13_throughput" "$SCALE" > "$TMP/out.txt"
    fig13_total "$TMP/out.txt" >> "$TMP/plain.txt"
    "$BUILD_DIR/bench/fig13_throughput" "$SCALE" \
        --telemetry="$TMP/fig13_telemetry.json" > "$TMP/out.txt"
    fig13_total "$TMP/out.txt" >> "$TMP/telem.txt"
    i=$((i + 1))
done

PLAIN="$(median "$TMP/plain.txt")"
TELEM="$(median "$TMP/telem.txt")"
DELTA="$(awk -v a="$PLAIN" -v b="$TELEM" \
    'BEGIN { printf "%.2f", (a > 0 ? 100.0 * (a - b) / a : 0) }')"
echo "fig13 prudence ops/s median: plain=$PLAIN telemetry=$TELEM" \
     "delta=${DELTA}% (budget ${TOLERANCE_PCT}%)"

FAIL=0
if awk -v d="$DELTA" -v t="$TOLERANCE_PCT" \
        'BEGIN { exit !(d > t) }'; then
    if [ "$STRICT" -eq 1 ]; then
        echo "FAIL: sampler overhead ${DELTA}% exceeds" \
             "${TOLERANCE_PCT}% (--strict)"
        FAIL=1
    else
        echo "WARN: sampler overhead ${DELTA}% exceeds" \
             "${TOLERANCE_PCT}% (report-only; use --strict to fail)"
    fi
fi

echo "== fig03 artifact check =="
"$BUILD_DIR/bench/fig03_endurance" "$SCALE" \
    --telemetry="$TMP/fig03_telemetry.json" > /dev/null
python3 - "$TMP/fig03_telemetry.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

names = {s["name"] for s in doc["series"]}
for want in ("process.rss_bytes", "prudence.alloc.latent_bytes",
             "slub.alloc.latent_bytes", "age.deferred_mean_ns"):
    assert want in names, f"series {want} missing from telemetry JSON"
for s in doc["series"]:
    # Bounded: the 2:1 fold must keep every series within capacity
    # (512 complete points + one pending bucket).
    assert len(s["points"]) <= 513, \
        f"{s['name']}: {len(s['points'])} points exceed the ring bound"
    ts = [p["t_first_ms"] for p in s["points"]]
    assert ts == sorted(ts), f"{s['name']}: timestamps not monotone"
print(f"fig03 telemetry JSON ok: {len(names)} series, "
      f"{doc['rounds']} rounds")
EOF

exit "$FAIL"

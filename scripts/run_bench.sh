#!/bin/sh
# Run the perf-tracking benchmark set (tab01_alloc_cost, fig06_micro,
# fig13_throughput) once with the thread-local magazine layer enabled
# (capacity 32, the default) and once disabled (capacity 0), and write
# a machine-readable summary to bench/results/BENCH_<git-sha>.json.
#
# Reported per config:
#   tab01  — alloc/free hit-cycle ns and ops/sec: mean, p50 and p99
#            computed over google-benchmark repetitions (REPS);
#   fig06  — kmalloc/kfree_deferred pairs/s per object size, both
#            allocators, plus the prudence/slub speedup;
#   fig13  — per-workload ops/s for both allocators and improvement %.
#
# Usage: scripts/run_bench.sh [preset]
#   preset    default | nofault | ...    (default: default)
# Environment:
#   SCALE  workload scale for fig06/fig13        (default: 0.2)
#   REPS   tab01 google-benchmark repetitions    (default: 5)
#   JOBS   parallel build jobs                   (default: 2)
#   OUT    output JSON path (default: bench/results/BENCH_<sha>.json)
set -eu

cd "$(dirname "$0")/.."

PRESET="${1:-default}"
case "$PRESET" in
default) BUILD_DIR=build ;;
*) BUILD_DIR="build-$PRESET" ;;
esac

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "${JOBS:-2}" \
    --target tab01_alloc_cost fig06_micro fig13_throughput

SHA="$(git rev-parse --short HEAD)"
SCALE="${SCALE:-0.2}"
REPS="${REPS:-5}"
OUT="${OUT:-bench/results/BENCH_${SHA}.json}"
mkdir -p bench/results

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for cap in 32 0; do
    echo "== magazine_capacity=$cap: tab01_alloc_cost =="
    PRUDENCE_MAGAZINE_CAPACITY=$cap \
        "$BUILD_DIR/bench/tab01_alloc_cost" \
        --benchmark_repetitions="$REPS" \
        --benchmark_report_aggregates_only=false \
        --benchmark_out="$TMP/tab01_$cap.json" \
        --benchmark_out_format=json
    echo "== magazine_capacity=$cap: fig06_micro =="
    PRUDENCE_MAGAZINE_CAPACITY=$cap \
        "$BUILD_DIR/bench/fig06_micro" "$SCALE" \
        | tee "$TMP/fig06_$cap.txt"
    echo "== magazine_capacity=$cap: fig13_throughput =="
    PRUDENCE_MAGAZINE_CAPACITY=$cap \
        "$BUILD_DIR/bench/fig13_throughput" "$SCALE" \
        | tee "$TMP/fig13_$cap.txt"
done

python3 - "$TMP" "$OUT" "$SHA" "$SCALE" "$REPS" <<'EOF'
import json
import re
import sys

tmp, out, sha, scale, reps = sys.argv[1:6]


def percentile(values, p):
    """Nearest-rank percentile over the repetition samples."""
    s = sorted(values)
    k = max(0, min(len(s) - 1, int(round(p / 100.0 * (len(s) - 1)))))
    return s[k]


def summary(values):
    return {
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p99": percentile(values, 99),
        "samples": len(values),
    }


def parse_tab01(path):
    with open(path) as f:
        doc = json.load(f)
    cycle_ns, ops = [], []
    for b in doc.get("benchmarks", []):
        if b.get("name", "").startswith("BM_AllocPath_Hit") and \
                b.get("run_type", "iteration") == "iteration":
            cycle_ns.append(b["real_time"])
            if "items_per_second" in b:
                ops.append(b["items_per_second"])
    result = {}
    if cycle_ns:
        result["hit_cycle_ns"] = summary(cycle_ns)
    if ops:
        result["hit_ops_per_sec"] = summary(ops)
    return result


def parse_fig06(path):
    rows = {}
    pat = re.compile(
        r"^\s*(\d+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)"
        r"\s+([\d.]+)\s*$")
    with open(path) as f:
        for line in f:
            m = pat.match(line)
            if m:
                rows[m.group(1)] = {
                    "slub_pairs_per_sec": float(m.group(2)),
                    "prudence_pairs_per_sec": float(m.group(4)),
                    "speedup": float(m.group(6)),
                }
    return rows


def parse_fig13(path):
    rows = {}
    pat = re.compile(
        r"^([a-z][a-z0-9_]*)\s+([\d.]+)\s+([\d.]+)\s+(-?[\d.]+)"
        r"\s+(-?[\d.]+)\s*$")
    with open(path) as f:
        for line in f:
            m = pat.match(line)
            if m:
                rows[m.group(1)] = {
                    "slub_ops_per_sec": float(m.group(2)),
                    "prudence_ops_per_sec": float(m.group(3)),
                    "improve_percent": float(m.group(4)),
                }
    return rows


doc = {
    "sha": sha,
    "scale": float(scale),
    "tab01_repetitions": int(reps),
    "configs": {},
}
for cap in ("32", "0"):
    doc["configs"]["magazine_" + cap] = {
        "magazine_capacity": int(cap),
        "tab01_alloc_cost": parse_tab01(f"{tmp}/tab01_{cap}.json"),
        "fig06_micro": parse_fig06(f"{tmp}/fig06_{cap}.txt"),
        "fig13_throughput": parse_fig13(f"{tmp}/fig13_{cap}.txt"),
    }

with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")

on = doc["configs"]["magazine_32"]["tab01_alloc_cost"]
off = doc["configs"]["magazine_0"]["tab01_alloc_cost"]
if "hit_cycle_ns" in on and "hit_cycle_ns" in off:
    a, b = on["hit_cycle_ns"]["p50"], off["hit_cycle_ns"]["p50"]
    if b > 0:
        print(f"tab01 hit cycle p50: magazines on {a:.1f} ns, "
              f"off {b:.1f} ns ({100.0 * (b - a) / b:+.1f}%)")
EOF

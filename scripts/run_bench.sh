#!/bin/sh
# Run the perf-tracking benchmark set (tab01_alloc_cost, fig06_micro,
# fig13_throughput) over the A/B knob matrix — thread-local magazines
# (capacity 32 vs 0) × per-CPU page caches (watermark 32 vs 0) — plus
# the fig14 buddy-lock contention microbench (its own pcp on/off
# table), and write a machine-readable summary to
# bench/results/BENCH_<git-sha>.json.
#
# Reported per config:
#   tab01  — alloc/free hit-cycle ns and ops/sec: mean, p50 and p99
#            computed over google-benchmark repetitions (REPS);
#   fig06  — kmalloc/kfree_deferred pairs/s per object size, both
#            allocators, plus the prudence/slub speedup;
#   fig13  — per-workload ops/s for both allocators and improvement %.
# Plus:
#   fig14  — ns/op, buddy-lock acquisitions/op and PCP hit rate per
#            thread count, pcp on vs off.
#
# Usage: scripts/run_bench.sh [preset]
#   preset    default | nofault | ...    (default: default)
# Environment:
#   SCALE  workload scale for fig06/fig13/fig14    (default: 0.2)
#   REPS   tab01 google-benchmark repetitions      (default: 5)
#   JOBS   parallel build jobs                     (default: 2)
#   OUT    output JSON path (default: bench/results/BENCH_<sha>.json)
set -eu

cd "$(dirname "$0")/.."

PRESET="${1:-default}"
case "$PRESET" in
default) BUILD_DIR=build ;;
*) BUILD_DIR="build-$PRESET" ;;
esac

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "${JOBS:-2}" \
    --target tab01_alloc_cost fig06_micro fig13_throughput \
    fig14_page_contention fig15_slab_contention fig03_endurance \
    ablation_governor scenario_bench

SHA="$(git rev-parse --short HEAD)"
SCALE="${SCALE:-0.2}"
REPS="${REPS:-5}"
OUT="${OUT:-bench/results/BENCH_${SHA}.json}"
mkdir -p bench/results

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for cap in 32 0; do
    for pcp in 32 0; do
        cfg="mag${cap}_pcp${pcp}"
        echo "== $cfg: tab01_alloc_cost =="
        PRUDENCE_MAGAZINE_CAPACITY=$cap \
            PRUDENCE_PCP_HIGH_WATERMARK=$pcp \
            "$BUILD_DIR/bench/tab01_alloc_cost" \
            --benchmark_repetitions="$REPS" \
            --benchmark_report_aggregates_only=false \
            --benchmark_out="$TMP/tab01_$cfg.json" \
            --benchmark_out_format=json
        echo "== $cfg: fig06_micro =="
        PRUDENCE_MAGAZINE_CAPACITY=$cap \
            PRUDENCE_PCP_HIGH_WATERMARK=$pcp \
            "$BUILD_DIR/bench/fig06_micro" "$SCALE" \
            | tee "$TMP/fig06_$cfg.txt"
        echo "== $cfg: fig13_throughput =="
        PRUDENCE_MAGAZINE_CAPACITY=$cap \
            PRUDENCE_PCP_HIGH_WATERMARK=$pcp \
            "$BUILD_DIR/bench/fig13_throughput" "$SCALE" \
            | tee "$TMP/fig13_$cfg.txt"
    done
done

# Lock-free per-CPU layer off (DESIGN.md §14), at the default
# mag32/pcp32 knobs: the legacy-spinlock row of the on/off
# comparison. The "on" leg is the build default in mag32_pcp32 above.
cfg="mag32_pcp32_lf0"
echo "== $cfg: tab01_alloc_cost =="
PRUDENCE_LOCKFREE_PCPU=0 \
    "$BUILD_DIR/bench/tab01_alloc_cost" \
    --benchmark_repetitions="$REPS" \
    --benchmark_report_aggregates_only=false \
    --benchmark_out="$TMP/tab01_$cfg.json" \
    --benchmark_out_format=json
echo "== $cfg: fig06_micro =="
PRUDENCE_LOCKFREE_PCPU=0 \
    "$BUILD_DIR/bench/fig06_micro" "$SCALE" \
    | tee "$TMP/fig06_$cfg.txt"
echo "== $cfg: fig13_throughput =="
PRUDENCE_LOCKFREE_PCPU=0 \
    "$BUILD_DIR/bench/fig13_throughput" "$SCALE" \
    | tee "$TMP/fig13_$cfg.txt"

# fig14 runs its own pcp on/off legs internally per thread count.
echo "== fig14_page_contention =="
"$BUILD_DIR/bench/fig14_page_contention" "$SCALE" \
    | tee "$TMP/fig14.txt"

# fig15 runs its own lock-free on/off legs internally per thread
# count (the per-CPU slab-lock analogue of fig14), plus a
# deferred-heavy mix leg and the residual-miss attribution counters.
echo "== fig15_slab_contention =="
"$BUILD_DIR/bench/fig15_slab_contention" "$SCALE" \
    | tee "$TMP/fig15.txt"

# Residual depot-miss mechanism matrix (DESIGN.md §14): slab-side
# prefill x per-CPU claim ring, each on/off, harvest-ahead at the
# build default. The run above is the prefill4_claim2 (all-default)
# cell; the remaining three cells isolate each mechanism's share of
# the lock_per_op reduction.
for pf in 4 0; do
    for cr in 2 0; do
        [ "$pf" = 4 ] && [ "$cr" = 2 ] && continue
        cfg="pf${pf}_cr${cr}"
        echo "== fig15_slab_contention ($cfg) =="
        PRUDENCE_DEPOT_PREFILL=$pf PRUDENCE_CLAIM_RING=$cr \
            "$BUILD_DIR/bench/fig15_slab_contention" "$SCALE" \
            | tee "$TMP/fig15_$cfg.txt"
    done
done

# fig03 endurance leg with the telemetry monitor attached: the
# RSS/latent-bytes/deferred-age time series land in the summary JSON
# (the paper's memory-over-time narrative, machine-readable per SHA).
echo "== fig03_endurance (telemetry) =="
"$BUILD_DIR/bench/fig03_endurance" "$SCALE" \
    --telemetry="$TMP/fig03_telemetry.json" > "$TMP/fig03.txt"
# PRUDENCE_TELEMETRY=OFF builds warn and ignore the flag; keep the
# summary schema stable with an empty block.
[ -f "$TMP/fig03_telemetry.json" ] || : > "$TMP/fig03_telemetry.json"

# Scenario engine (DESIGN.md §15): open-loop server-style traffic per
# stock scenario per allocator — tail latency (p99/p999) and peak RSS
# land in the summary as scenario_burst / scenario_diurnal /
# scenario_churn rows.
echo "== scenario_bench =="
"$BUILD_DIR/bench/scenario_bench" "$SCALE" \
    | tee "$TMP/scenarios.txt"

# Governor ablation: static knobs vs. the adaptive reclamation
# governor under a fixed offered load (DESIGN.md §13). Peak footprint,
# deferred-age p99 and reader p99 per leg land in the summary.
echo "== ablation_governor =="
"$BUILD_DIR/bench/ablation_governor" "$SCALE" \
    | tee "$TMP/ablation_governor.txt"

python3 - "$TMP" "$OUT" "$SHA" "$SCALE" "$REPS" <<'EOF'
import json
import re
import sys

tmp, out, sha, scale, reps = sys.argv[1:6]


def percentile(values, p):
    """Nearest-rank percentile over the repetition samples."""
    s = sorted(values)
    k = max(0, min(len(s) - 1, int(round(p / 100.0 * (len(s) - 1)))))
    return s[k]


def summary(values):
    return {
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p99": percentile(values, 99),
        "samples": len(values),
    }


def parse_tab01(path):
    with open(path) as f:
        doc = json.load(f)
    cycle_ns, ops = [], []
    for b in doc.get("benchmarks", []):
        if b.get("name", "").startswith("BM_AllocPath_Hit") and \
                b.get("run_type", "iteration") == "iteration":
            cycle_ns.append(b["real_time"])
            if "items_per_second" in b:
                ops.append(b["items_per_second"])
    result = {}
    if cycle_ns:
        result["hit_cycle_ns"] = summary(cycle_ns)
    if ops:
        result["hit_ops_per_sec"] = summary(ops)
    return result


def parse_fig06(path):
    rows = {}
    pat = re.compile(
        r"^\s*(\d+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)"
        r"\s+([\d.]+)\s*$")
    with open(path) as f:
        for line in f:
            m = pat.match(line)
            if m:
                rows[m.group(1)] = {
                    "slub_pairs_per_sec": float(m.group(2)),
                    "prudence_pairs_per_sec": float(m.group(4)),
                    "speedup": float(m.group(6)),
                }
    return rows


def parse_fig13(path):
    rows = {}
    pat = re.compile(
        r"^([a-z][a-z0-9_]*)\s+([\d.]+)\s+([\d.]+)\s+(-?[\d.]+)"
        r"\s+(-?[\d.]+)\s*$")
    with open(path) as f:
        for line in f:
            m = pat.match(line)
            if m:
                rows[m.group(1)] = {
                    "slub_ops_per_sec": float(m.group(2)),
                    "prudence_ops_per_sec": float(m.group(3)),
                    "improve_percent": float(m.group(4)),
                }
    return rows


def parse_telemetry(path):
    """Fold the fig03 telemetry time series into the summary: the
    RSS-over-time, per-phase latent-bytes and deferred-age series as
    (t_ms, value) pairs. Bounded by construction (the monitor's 2:1
    downsampling), so the summary stays a few hundred points per
    series no matter how long the run was."""
    keep = (
        "process.rss_bytes",
        "slub.alloc.latent_bytes",
        "prudence.alloc.latent_bytes",
        "slub.buddy.bytes_in_use",
        "prudence.buddy.bytes_in_use",
        "age.deferred_mean_ns",
        "age.deferred_p99_ns",
    )
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError):
        return {}  # telemetry compiled out or leg skipped
    out = {"period_us": doc["period_us"], "rounds": doc["rounds"],
           "series": {}}
    for s in doc["series"]:
        if s["name"] not in keep:
            continue
        out["series"][s["name"]] = {
            "unit": s["unit"],
            "samples_per_point": s["samples_per_point"],
            "points": [[p["t_last_ms"], p["last"]]
                       for p in s["points"]],
        }
    return out


def parse_ablation_governor(path):
    """`leg <name> pairs_s <v> peak_mib <v> defer_p99_ms <v>
    reader_p99_us <v>` rows, one per leg."""
    rows = {}
    pat = re.compile(
        r"^leg\s+(\w+)\s+pairs_s\s+([\d.]+)\s+peak_mib\s+([\d.]+)"
        r"\s+defer_p99_ms\s+([\d.]+)\s+reader_p99_us\s+([\d.]+)\s*$")
    with open(path) as f:
        for line in f:
            m = pat.match(line)
            if m:
                rows[m.group(1)] = {
                    "pairs_per_sec": float(m.group(2)),
                    "peak_mib": float(m.group(3)),
                    "defer_p99_ms": float(m.group(4)),
                    "reader_p99_us": float(m.group(5)),
                }
    if "static" in rows and "governed" in rows and \
            rows["static"]["peak_mib"] > 0:
        rows["peak_reduction_percent"] = 100.0 * (
            1.0 - rows["governed"]["peak_mib"] /
            rows["static"]["peak_mib"])
    return rows


def parse_fig15(path):
    rows = {}
    pat = re.compile(
        r"^\s*(\d+)\s+(on|off)(-heavy)?\s+([\d.]+)\s+([\d.]+)"
        r"\s+([\d.]+)\s*$")
    miss_pat = re.compile(
        r"^# 8 threads (on(?:-heavy)?): miss_cold=(\d+)"
        r" miss_gp_pending=(\d+) prefills=(\d+) claim_hits=(\d+)"
        r" harvests_ahead=(\d+)\s*$")
    with open(path) as f:
        for line in f:
            m = pat.match(line)
            if m:
                leg = "lockfree_" + m.group(2) + \
                    ("_heavy" if m.group(3) else "")
                rows.setdefault("threads_" + m.group(1), {})[leg] = {
                    "ns_per_op": float(m.group(4)),
                    "pcpu_lock_acq_per_op": float(m.group(5)),
                    "depot_exchanges_per_op": float(m.group(6)),
                }
                continue
            m = miss_pat.match(line)
            if m:
                leg = m.group(1).replace("-", "_")
                rows.setdefault("miss_attribution", {})[leg] = {
                    "miss_cold": int(m.group(2)),
                    "miss_gp_pending": int(m.group(3)),
                    "prefills": int(m.group(4)),
                    "claim_hits": int(m.group(5)),
                    "harvests_ahead": int(m.group(6)),
                }
    return rows


def parse_scenarios(path):
    """`scenario <name> alloc <kind> completed <n> failed <n> rps <v>
    p50_us <v> ... peak_rss_mib <v> fingerprint 0x<hex>` rows, one per
    (scenario, allocator) leg, folded into scenario_<name> objects."""
    rows = {}
    pat = re.compile(
        r"^scenario\s+(\S+)\s+alloc\s+(\w+)\s+completed\s+(\d+)"
        r"\s+failed\s+(\d+)\s+rps\s+([\d.]+)\s+p50_us\s+([\d.]+)"
        r"\s+p90_us\s+([\d.]+)\s+p99_us\s+([\d.]+)"
        r"\s+p999_us\s+([\d.]+)\s+max_us\s+([\d.]+)"
        r"\s+peak_rss_mib\s+([\d.]+)\s+fingerprint\s+(0x[0-9a-f]+)"
        r"\s*$")
    with open(path) as f:
        for line in f:
            m = pat.match(line)
            if m:
                rows.setdefault("scenario_" + m.group(1), {})[
                    m.group(2)] = {
                    "completed": int(m.group(3)),
                    "failed": int(m.group(4)),
                    "rps": float(m.group(5)),
                    "p50_us": float(m.group(6)),
                    "p90_us": float(m.group(7)),
                    "p99_us": float(m.group(8)),
                    "p999_us": float(m.group(9)),
                    "max_us": float(m.group(10)),
                    "peak_rss_mib": float(m.group(11)),
                    "fingerprint": m.group(12),
                }
    return rows


def parse_fig14(path):
    rows = {}
    pat = re.compile(
        r"^\s*(\d+)\s+(on|off)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s*$")
    with open(path) as f:
        for line in f:
            m = pat.match(line)
            if m:
                rows.setdefault("threads_" + m.group(1), {})[
                    "pcp_" + m.group(2)] = {
                    "ns_per_op": float(m.group(3)),
                    "lock_acq_per_op": float(m.group(4)),
                    "pcp_hit_rate": float(m.group(5)),
                }
    return rows


doc = {
    "sha": sha,
    "scale": float(scale),
    "tab01_repetitions": int(reps),
    "configs": {},
    "fig14_page_contention": parse_fig14(f"{tmp}/fig14.txt"),
    "fig15_slab_contention": parse_fig15(f"{tmp}/fig15.txt"),
    "fig15_mechanism_matrix": {
        "prefill4_claim2": parse_fig15(f"{tmp}/fig15.txt"),
        "prefill4_claim0": parse_fig15(f"{tmp}/fig15_pf4_cr0.txt"),
        "prefill0_claim2": parse_fig15(f"{tmp}/fig15_pf0_cr2.txt"),
        "prefill0_claim0": parse_fig15(f"{tmp}/fig15_pf0_cr0.txt"),
    },
    "fig03_telemetry": parse_telemetry(f"{tmp}/fig03_telemetry.json"),
    "ablation_governor":
        parse_ablation_governor(f"{tmp}/ablation_governor.txt"),
}
doc.update(parse_scenarios(f"{tmp}/scenarios.txt"))
for cap in ("32", "0"):
    for pcp in ("32", "0"):
        cfg = f"mag{cap}_pcp{pcp}"
        doc["configs"][cfg] = {
            "magazine_capacity": int(cap),
            "pcp_high_watermark": int(pcp),
            "tab01_alloc_cost": parse_tab01(f"{tmp}/tab01_{cfg}.json"),
            "fig06_micro": parse_fig06(f"{tmp}/fig06_{cfg}.txt"),
            "fig13_throughput": parse_fig13(f"{tmp}/fig13_{cfg}.txt"),
        }
cfg = "mag32_pcp32_lf0"
doc["configs"][cfg] = {
    "magazine_capacity": 32,
    "pcp_high_watermark": 32,
    "lockfree_pcpu": 0,
    "tab01_alloc_cost": parse_tab01(f"{tmp}/tab01_{cfg}.json"),
    "fig06_micro": parse_fig06(f"{tmp}/fig06_{cfg}.txt"),
    "fig13_throughput": parse_fig13(f"{tmp}/fig13_{cfg}.txt"),
}

with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")

on = doc["configs"]["mag32_pcp32"]["tab01_alloc_cost"]
off = doc["configs"]["mag0_pcp32"]["tab01_alloc_cost"]
if "hit_cycle_ns" in on and "hit_cycle_ns" in off:
    a, b = on["hit_cycle_ns"]["p50"], off["hit_cycle_ns"]["p50"]
    if b > 0:
        print(f"tab01 hit cycle p50: magazines on {a:.1f} ns, "
              f"off {b:.1f} ns ({100.0 * (b - a) / b:+.1f}%)")

gov = doc["ablation_governor"]
if "peak_reduction_percent" in gov:
    print(f"ablation_governor: peak {gov['static']['peak_mib']:.0f} "
          f"MiB static -> {gov['governed']['peak_mib']:.0f} MiB "
          f"governed ({gov['peak_reduction_percent']:+.1f}%), "
          f"defer p99 {gov['static']['defer_p99_ms']:.1f} -> "
          f"{gov['governed']['defer_p99_ms']:.1f} ms")

lf_on = doc["configs"]["mag32_pcp32"]["tab01_alloc_cost"]
lf_off = doc["configs"]["mag32_pcp32_lf0"]["tab01_alloc_cost"]
if "hit_cycle_ns" in lf_on and "hit_cycle_ns" in lf_off:
    a = lf_on["hit_cycle_ns"]["p50"]
    b = lf_off["hit_cycle_ns"]["p50"]
    if b > 0:
        print(f"tab01 hit cycle p50: lock-free on {a:.1f} ns, "
              f"off {b:.1f} ns ({100.0 * (b - a) / b:+.1f}%)")

s8 = doc["fig15_slab_contention"].get("threads_8", {})
if "lockfree_on" in s8 and "lockfree_off" in s8:
    on_l = s8["lockfree_on"]["pcpu_lock_acq_per_op"]
    off_l = s8["lockfree_off"]["pcpu_lock_acq_per_op"]
    on_ns = s8["lockfree_on"]["ns_per_op"]
    off_ns = s8["lockfree_off"]["ns_per_op"]
    if on_ns > 0:
        print(f"fig15 @8 threads: per-CPU lock acq/op {off_l:.4f} -> "
              f"{on_l:.4f}, ns/op {off_ns:.1f} -> {on_ns:.1f} "
              f"({off_ns / on_ns:.2f}x)")

cells = []
for name in ("prefill0_claim0", "prefill0_claim2", "prefill4_claim0",
             "prefill4_claim2"):
    cell = doc["fig15_mechanism_matrix"][name].get(
        "threads_8", {}).get("lockfree_on")
    if cell:
        cells.append(f"{name} {cell['pcpu_lock_acq_per_op']:.4f}")
if cells:
    print("fig15 mechanism matrix @8 threads lock/op: "
          + ", ".join(cells))

for key in ("scenario_burst", "scenario_diurnal", "scenario_churn"):
    legs = doc.get(key, {})
    if "slub" in legs and "prudence" in legs:
        print(f"{key}: p99 {legs['slub']['p99_us']:.1f} -> "
              f"{legs['prudence']['p99_us']:.1f} us, p999 "
              f"{legs['slub']['p999_us']:.1f} -> "
              f"{legs['prudence']['p999_us']:.1f} us, peak RSS "
              f"{legs['slub']['peak_rss_mib']:.1f} -> "
              f"{legs['prudence']['peak_rss_mib']:.1f} MiB")

t8 = doc["fig14_page_contention"].get("threads_8", {})
if "pcp_on" in t8 and "pcp_off" in t8:
    on_l = t8["pcp_on"]["lock_acq_per_op"]
    off_l = t8["pcp_off"]["lock_acq_per_op"]
    on_ns = t8["pcp_on"]["ns_per_op"]
    off_ns = t8["pcp_off"]["ns_per_op"]
    if on_l > 0:
        print(f"fig14 @8 threads: buddy-lock acq/op {off_l:.4f} -> "
              f"{on_l:.4f} ({off_l / on_l:.0f}x reduction), "
              f"ns/op {off_ns:.1f} -> {on_ns:.1f} "
              f"({off_ns / on_ns:.2f}x)")
EOF

#!/bin/sh
# Build a preset and run the prudtorture fault-injection harness plus
# the tier-1 test suite. The torture run mixes readers, updaters and
# OOM-stress threads over the Prudence allocator while injecting
# faults at every seeded site, then checks the reclamation invariants
# (no lost callbacks, no use-after-reclaim, accounting consistent at
# quiesce). The default seed is fixed so failures reproduce.
#
# Usage: scripts/check_torture.sh [preset] [extra prudtorture args...]
#   preset    default | asan | tsan | nofault   (default: default)
# Environment:
#   DURATION  torture run length in seconds      (default: 20)
#   SEED      fault seed                         (default: 42)
#   JOBS      parallel build/test jobs           (default: 2)
set -eu

cd "$(dirname "$0")/.."

PRESET="${1:-default}"
[ $# -gt 0 ] && shift

case "$PRESET" in
default) BUILD_DIR=build ;;
*) BUILD_DIR="build-$PRESET" ;;
esac

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "${JOBS:-2}"

ctest --preset "$PRESET" -j "${JOBS:-2}"

"$BUILD_DIR/tools/prudtorture" \
    --duration="${DURATION:-20}" \
    --fault-seed="${SEED:-42}" \
    "$@"

# Second pass with the thread-local magazine layer disabled: the
# per-operation paths (per-op epoch tagging, shared-counter stats)
# must survive the same fault schedule.
"$BUILD_DIR/tools/prudtorture" \
    --duration="${DURATION:-20}" \
    --fault-seed="${SEED:-42}" \
    --magazine-capacity=0 \
    "$@"

# Third pass with the per-CPU page caches disabled: slab grow/release
# takes the legacy single-lock buddy path, so checked-free, the OOM
# ladder and quiesce accounting must hold without the PCP drain hook.
"$BUILD_DIR/tools/prudtorture" \
    --duration="${DURATION:-20}" \
    --fault-seed="${SEED:-42}" \
    --pcp-high-watermark=0 \
    "$@"

# Fourth pass with the lock-free per-CPU layer disabled (DESIGN.md
# §14): the legacy spinlock caches and locked magazine refill/flush
# must survive the same fault schedule, proving the toggle-off leg
# stays a first-class citizen.
"$BUILD_DIR/tools/prudtorture" \
    --duration="${DURATION:-20}" \
    --fault-seed="${SEED:-42}" \
    --lockfree-pcpu=0 \
    "$@"

# Passes 5-7: each residual depot-miss mechanism (DESIGN.md §14)
# disabled in turn — harvest-ahead off, slab-side prefill off, claim
# ring off. The transparent-fallback contract says every leg must
# survive the identical fault schedule with clean accounting.
"$BUILD_DIR/tools/prudtorture" \
    --duration="${DURATION:-20}" \
    --fault-seed="${SEED:-42}" \
    --harvest-ahead=0 \
    "$@"

"$BUILD_DIR/tools/prudtorture" \
    --duration="${DURATION:-20}" \
    --fault-seed="${SEED:-42}" \
    --depot-prefill=0 \
    "$@"

"$BUILD_DIR/tools/prudtorture" \
    --duration="${DURATION:-20}" \
    --fault-seed="${SEED:-42}" \
    --claim-ring=0 \
    "$@"

# Final pass with the adaptive reclamation governor driving the
# pacing/admission/trim actuators while kGovernorAction faults refuse
# a quarter of its dispatches: held actions must retry until they
# land, the OOM ladder must hand off into the governor's terminal
# level, and the fault-decision audit must stay clean with the
# control loop in the picture. (The passes above are the
# governor-off legs.)
"$BUILD_DIR/tools/prudtorture" \
    --duration="${DURATION:-20}" \
    --fault-seed="${SEED:-42}" \
    --governor \
    "$@"

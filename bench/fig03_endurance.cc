/**
 * @file
 * Figure 3 reproduction: impact of RCU-driven deferred freeing on
 * total used memory over time.
 *
 * Workload (paper §3.5): every CPU continuously performs an RCU
 * update — allocate a new 512-byte object, defer-free the old version
 * — while total used memory is sampled every 10 ms.
 *
 *  - Baseline (SLUB + throttled callback processing): deferred
 *    objects outlive their grace periods because processing is
 *    batched and throttled; used memory climbs, expediting kicks in
 *    under pressure (paper: ~70 s mark), and the system still runs
 *    out of memory (paper: 196 s).
 *  - Prudence: memory rises briefly (the first grace period's worth
 *    of deferrals) and then holds an equilibrium.
 *
 * Output: `<allocator> <elapsed_ms> <used_mib>` series plus a
 * summary. Time and memory are scaled down from the paper's
 * 252 GiB/64-CPU testbed; the shape is the reproduction target.
 */
#include <atomic>
#include <chrono>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <optional>
#include <thread>
#include <vector>

#include "api/allocator_factory.h"
#include "bench/bench_common.h"
#include "rcu/rcu_domain.h"
#include "stats/memory_sampler.h"
#include "workload/engine.h"

namespace {

using namespace prudence;

struct EnduranceOutcome
{
    std::vector<MemorySample> timeline;
    double oom_ms = -1.0;  // first allocation failure; -1 = none
    std::uint64_t updates = 0;
    std::uint64_t expedited_ticks = 0;
};

EnduranceOutcome
run_endurance(bool use_prudence, double seconds, std::size_t arena_bytes,
              unsigned threads, telemetry::Monitor* monitor,
              const char* probe_prefix)
{
    RcuConfig rcfg;
    rcfg.gp_interval = std::chrono::microseconds{500};
    RcuDomain rcu(rcfg);

    std::unique_ptr<Allocator> alloc;
    if (use_prudence) {
        PrudenceConfig cfg;
        cfg.arena_bytes = arena_bytes;
        cfg.cpus = threads;
        alloc = make_prudence_allocator(rcu, cfg);
    } else {
        SlubConfig cfg;
        cfg.arena_bytes = arena_bytes;
        cfg.cpus = threads;
        // The Figure 3 regime: background-throttled processing only.
        // Under memory pressure the engine expedites (paper: RCU
        // "attempts to process more deferred objects as the memory
        // pressure increases") but arrival still outruns it.
        cfg.callback.inline_batch_limit = 0;
        cfg.callback.batch_limit = 10;
        cfg.callback.expedited_batch_limit = 100;
        cfg.callback.expedite_threshold = 0.5;
        cfg.callback.tick = std::chrono::microseconds{1000};
        alloc = make_slub_allocator(rcu, cfg);
    }

    CacheId id = alloc->create_cache("endurance_obj", 512);

    // Per-phase probes under --telemetry: "slub."/"prudence."-prefixed
    // latent/buddy/rcu series, unregistered (group destructor) before
    // the allocator dies so the sampler never touches a dead engine.
    std::optional<telemetry::ProbeGroup> probes;
    if (monitor != nullptr) {
        probes.emplace(*monitor);
        alloc->register_telemetry_probes(*probes, probe_prefix);
        rcu.register_telemetry_probes(*probes, probe_prefix);
    }

    EnduranceOutcome out;
    MemorySampler sampler(
        [&] { return alloc->page_allocator().bytes_in_use(); },
        std::chrono::milliseconds(5));

    std::atomic<bool> stop{false};
    std::atomic<double> oom_ms{-1.0};
    std::atomic<std::uint64_t> updates{0};
    auto t0 = std::chrono::steady_clock::now();

    sampler.start();
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            std::uint64_t local = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                void* obj = alloc->cache_alloc(id);
                if (obj == nullptr) {
                    double ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                    double expected = -1.0;
                    oom_ms.compare_exchange_strong(expected, ms);
                    stop.store(true, std::memory_order_relaxed);
                    break;
                }
                std::memset(obj, 0xA5, 64);
                alloc->cache_free_deferred(id, obj);
                ++local;
                // Unthrottled, like the paper's stress loop: the
                // update rate must durably exceed what the throttled
                // callback path can process.
            }
            updates.fetch_add(local);
        });
    }

    auto deadline =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(seconds));
    while (!stop.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& w : workers)
        w.join();
    sampler.stop();

    out.timeline = sampler.samples();
    out.oom_ms = oom_ms.load();
    out.updates = updates.load();
    if (!use_prudence) {
        out.expedited_ticks =
            static_cast<SlubAllocator*>(alloc.get())
                ->callback_stats()
                .expedited_ticks;
    }
    alloc->quiesce();
    return out;
}

void
print_outcome(const char* name, const EnduranceOutcome& out)
{
    for (const MemorySample& s : out.timeline) {
        std::cout << name << " " << std::fixed << std::setprecision(1)
                  << s.elapsed_ms << " "
                  << static_cast<double>(s.value) / (1 << 20) << "\n";
    }
    std::uint64_t peak = 0;
    for (const MemorySample& s : out.timeline)
        peak = std::max(peak, s.value);
    std::cout << "# " << name << ": updates=" << out.updates
              << " peak_mib=" << (peak >> 20);
    if (out.oom_ms >= 0)
        std::cout << " OOM_at_ms=" << std::fixed << std::setprecision(0)
                  << out.oom_ms;
    else
        std::cout << " no_OOM";
    if (out.expedited_ticks > 0)
        std::cout << " expedited_ticks=" << out.expedited_ticks;
    std::cout << "\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    // With --trace=<file>: records grace-period, callback-drain and
    // latent-ring events across both runs and exports Perfetto JSON
    // on exit.
    prudence_bench::TraceSession trace_session(argc, argv);
    // Declared after TraceSession: its destructor runs first, handing
    // the counter-track series to the trace exporter before the trace
    // JSON is written.
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    double seconds = 12.0 * scale;
    if (seconds < 0.5)
        seconds = 0.5;
    std::size_t arena = std::size_t{192} << 20;
    unsigned threads = 8;

    prudence_bench::print_banner(
        "Figure 3: total used memory vs time under continuous RCU "
        "updates",
        "SLUB+RCU climbs to OOM at 196 s (expediting at ~70 s); "
        "Prudence rises then holds equilibrium");
    std::cout << "# arena_mib=" << (arena >> 20)
              << " threads=" << threads << " object=512B duration_s="
              << seconds << "\n";
    std::cout << "# columns: allocator elapsed_ms used_mib\n";

    EnduranceOutcome slub =
        run_endurance(/*use_prudence=*/false, seconds, arena, threads,
                      telemetry_session.monitor(), "slub.");
    print_outcome("slub", slub);
    // Drain the registry between phases (atomic exchange) so each
    // allocator's latency summary covers only its own run.
    prudence::print_latency_summary(
        std::cout, "slub phase: latency histograms (ns)",
        prudence::trace::MetricsRegistry::instance().snapshot_all(
            /*reset=*/true));

    EnduranceOutcome prud =
        run_endurance(/*use_prudence=*/true, seconds, arena, threads,
                      telemetry_session.monitor(), "prudence.");
    print_outcome("prudence", prud);
    // No reset: the prudence-phase numbers stay in the registry for
    // the TraceSession metrics export.
    prudence::print_latency_summary(
        std::cout, "prudence phase: latency histograms (ns)",
        prudence::trace::MetricsRegistry::instance().snapshot_all());

    std::cout << "# paper-vs-measured: baseline "
              << (slub.oom_ms >= 0 ? "hit OOM (matches paper)"
                                   : "did NOT hit OOM (mismatch)")
              << "; Prudence "
              << (prud.oom_ms < 0 ? "held equilibrium (matches paper)"
                                  : "hit OOM (mismatch)")
              << "\n";
    return 0;
}

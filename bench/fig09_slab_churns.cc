/**
 * @file
 * Figure 9 reproduction: slab churns (grow/shrink pairs) per
 * (benchmark, slab cache). Paper: Prudence reduces slab churns
 * 21%-98.3% (Netperf filp: 364K -> 6K; Postmark dentry only -3.1%).
 */
#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    prudence_bench::print_banner(
        "Figure 9: slab churns (grow/shrink pairs)",
        "Prudence -21%..-98.3%; Netperf filp drops 364K -> 6K");
    auto cmps =
        prudence::run_paper_suite(prudence_bench::suite_config(scale));
    prudence::print_fig9_slab_churns(
        std::cout, cmps, prudence_bench::report_options(scale));
    if (trace_session.active())
        prudence::print_latency_histograms(std::cout, cmps);
    return 0;
}

/**
 * @file
 * Figure 6 reproduction: kmalloc()/kfree_deferred() pairs executed
 * per second for different allocation sizes.
 *
 * Paper (§5.2): tight alloc/defer-free loop on all CPUs, object sizes
 * up to 4096 B, 5 M pairs per CPU per size, three runs, mean ± stddev.
 * Prudence beats SLUB 3.9×–28.6×, the gap widening with object size
 * (larger objects have shallower caches and smaller slabs, so the
 * baseline churns more).
 *
 * The baseline runs with softirq-style inline callback assistance so
 * it survives the loop (the Figure 3 regime would just OOM); it still
 * pays for bursty frees and extended lifetimes.
 */
#include <chrono>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "api/allocator_factory.h"
#include "bench/bench_common.h"
#include "rcu/rcu_domain.h"

namespace {

using namespace prudence;

double
run_pairs_per_second(bool use_prudence, std::size_t size,
                     std::uint64_t pairs_per_thread, unsigned threads)
{
    RcuConfig rcfg;
    rcfg.gp_interval = std::chrono::microseconds{1000};
    RcuDomain rcu(rcfg);

    std::unique_ptr<Allocator> alloc;
    if (use_prudence) {
        PrudenceConfig cfg;
        cfg.arena_bytes = std::size_t{1} << 30;
        cfg.cpus = threads;
        cfg.magazine_capacity = prudence_bench::magazine_capacity_env(
            cfg.magazine_capacity);
        cfg.lockfree_pcpu =
            prudence_bench::lockfree_pcpu_env(cfg.lockfree_pcpu);
        alloc = make_prudence_allocator(rcu, cfg);
    } else {
        SlubConfig cfg;
        cfg.arena_bytes = std::size_t{1} << 30;
        cfg.cpus = threads;
        cfg.magazine_capacity = prudence_bench::magazine_capacity_env(
            cfg.magazine_capacity);
        cfg.lockfree_pcpu =
            prudence_bench::lockfree_pcpu_env(cfg.lockfree_pcpu);
        // Kernel-faithful regime: callbacks become ready in
        // grace-period batches and the softirq drains the ready list
        // at once — deferred frees land on the allocator in bursts
        // (paper §3.1), not smoothly paced.
        cfg.callback.inline_batch_limit = 100000;
        cfg.callback.batch_limit = 1000;
        cfg.callback.tick = std::chrono::microseconds{1000};
        alloc = make_slub_allocator(rcu, cfg);
    }

    std::vector<std::thread> workers;
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&alloc, size, pairs_per_thread] {
            for (std::uint64_t i = 0; i < pairs_per_thread; ++i) {
                void* p = alloc->kmalloc(size);
                if (p != nullptr)
                    alloc->kfree_deferred(p);
            }
        });
    }
    for (auto& w : workers)
        w.join();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    alloc->quiesce();
    double total =
        static_cast<double>(pairs_per_thread) * threads;
    return seconds > 0 ? total / seconds : 0.0;
}

struct Series
{
    double mean = 0.0;
    double stddev = 0.0;
};

Series
summarize(const std::vector<double>& runs)
{
    Series s;
    for (double r : runs)
        s.mean += r;
    s.mean /= static_cast<double>(runs.size());
    for (double r : runs)
        s.stddev += (r - s.mean) * (r - s.mean);
    s.stddev =
        std::sqrt(s.stddev / static_cast<double>(runs.size()));
    return s;
}

}  // namespace

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    auto pairs = static_cast<std::uint64_t>(150000.0 * scale);
    if (pairs < 1000)
        pairs = 1000;
    unsigned threads = 8;
    constexpr int kRuns = 3;

    prudence_bench::print_banner(
        "Figure 6: kmalloc/kfree_deferred pairs per second by size",
        "Prudence 3.9x-28.6x over SLUB; improvement grows with "
        "object size (28.6x at 4096 B)");
    std::cout << "# threads=" << threads << " pairs_per_thread="
              << pairs << " runs=" << kRuns << "\n";
    std::cout << std::left << std::setw(8) << "size" << std::right
              << std::setw(16) << "slub pairs/s" << std::setw(10)
              << "+-sd" << std::setw(16) << "prudence pairs/s"
              << std::setw(10) << "+-sd" << std::setw(10) << "speedup"
              << "\n";

    for (std::size_t size : {64u, 128u, 256u, 512u, 1024u, 2048u,
                             4096u}) {
        std::vector<double> slub_runs, prud_runs;
        for (int r = 0; r < kRuns; ++r) {
            slub_runs.push_back(run_pairs_per_second(
                /*use_prudence=*/false, size, pairs, threads));
            prud_runs.push_back(run_pairs_per_second(
                /*use_prudence=*/true, size, pairs, threads));
        }
        Series slub = summarize(slub_runs);
        Series prud = summarize(prud_runs);
        std::cout << std::left << std::setw(8) << size << std::right
                  << std::fixed << std::setprecision(0)
                  << std::setw(16) << slub.mean << std::setw(10)
                  << slub.stddev << std::setw(16) << prud.mean
                  << std::setw(10) << prud.stddev
                  << std::setprecision(2) << std::setw(10)
                  << (slub.mean > 0 ? prud.mean / slub.mean : 0.0)
                  << "\n";
    }
    std::cout << "# paper-vs-measured: expect speedup > 1 at every "
                 "size, increasing toward the largest objects\n";
    return 0;
}

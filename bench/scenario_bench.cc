/**
 * @file
 * Scenario engine driver (DESIGN.md §15): server-style open-loop
 * traffic on both allocators. Emits one machine-parseable
 * `scenario ...` row per (scenario, allocator) pair — run_bench.sh
 * folds these into BENCH_<sha>.json — plus a human digest per run.
 *
 * Usage:
 *   scenario_bench [scale] [--scenario=<stock-name-or-file>]...
 *                  [--unpaced] [--threads=N] [--trace=<file>]
 *
 * With no --scenario flags all three stock scenarios run. The scale
 * argument multiplies each scenario's scheduled duration (quick
 * smoke legs use e.g. 0.25).
 */
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/allocator_factory.h"
#include "bench/bench_common.h"
#include "rcu/rcu_domain.h"
#include "workload/engine.h"
#include "workload/scenario.h"

namespace {

/// Resolve a --scenario= operand: a stock name or a DSL file path.
bool
load_scenario(const std::string& arg, prudence::ScenarioSpec& out)
{
    if (prudence::stock_scenario(arg, out))
        return true;
    std::ifstream in(arg);
    if (!in) {
        std::cerr << "scenario_bench: cannot open scenario '" << arg
                  << "' (not a stock name or readable file)\n";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    prudence::ScenarioParseResult parsed =
        prudence::parse_scenario(text.str());
    if (!parsed.ok) {
        std::cerr << "scenario_bench: " << arg << ": " << parsed.error
                  << "\n";
        return false;
    }
    for (const std::string& note : parsed.clamped)
        std::cerr << "scenario_bench: " << arg << ": note: " << note
                  << "\n";
    out = parsed.spec;
    return true;
}

prudence::ScenarioResult
run_on(const prudence::ScenarioSpec& spec,
       const prudence::SuiteConfig& cfg,
       const prudence::ScenarioRunOptions& options, bool slub)
{
    prudence::RcuDomain rcu;
    std::unique_ptr<prudence::Allocator> alloc;
    if (slub) {
        prudence::SlubConfig sc;
        sc.arena_bytes = cfg.arena_bytes;
        sc.cpus = cfg.cpus;
        sc.magazine_capacity = cfg.magazine_capacity;
        sc.pcp_high_watermark = cfg.pcp_high_watermark;
        sc.pcp_batch = cfg.pcp_batch;
        sc.lockfree_pcpu = cfg.lockfree_pcpu;
        sc.callback.inline_batch_limit = 100000;
        sc.callback.batch_limit = 1000;
        sc.callback.tick = std::chrono::microseconds{1000};
        alloc = prudence::make_slub_allocator(rcu, sc);
    } else {
        prudence::PrudenceConfig pc;
        pc.arena_bytes = cfg.arena_bytes;
        pc.cpus = cfg.cpus;
        pc.magazine_capacity = cfg.magazine_capacity;
        pc.pcp_high_watermark = cfg.pcp_high_watermark;
        pc.pcp_batch = cfg.pcp_batch;
        pc.lockfree_pcpu = cfg.lockfree_pcpu;
        alloc = prudence::make_prudence_allocator(rcu, pc);
    }
    return prudence::run_scenario(*alloc, rcu, spec, options);
}

}  // namespace

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    prudence::SuiteConfig cfg = prudence_bench::suite_config(scale);

    prudence::ScenarioRunOptions options;
    std::vector<std::string> requested;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scenario=", 11) == 0)
            requested.emplace_back(argv[i] + 11);
        else if (std::strcmp(argv[i], "--unpaced") == 0)
            options.paced = false;
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            options.threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 10));
    }
    if (requested.empty())
        requested = prudence::stock_scenario_names();

    prudence_bench::print_banner(
        "Scenario engine: tail latency and footprint under "
        "server-style traffic",
        "open-loop p99/p999 and peak RSS per scenario per allocator");

    int rc = 0;
    for (const std::string& name : requested) {
        prudence::ScenarioSpec spec;
        if (!load_scenario(name, spec)) {
            rc = 2;
            continue;
        }
        double ms = static_cast<double>(spec.duration_ms) * scale;
        spec.duration_ms = ms < 1.0 ? 1 : static_cast<std::uint32_t>(ms);
        for (bool slub : {true, false}) {
            prudence::ScenarioResult r =
                run_on(spec, cfg, options, slub);
            prudence::print_scenario_summary(std::cout, r);
            prudence::print_scenario_row(std::cout, r);
        }
    }
    return rc;
}

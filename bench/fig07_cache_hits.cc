/**
 * @file
 * Figure 7 reproduction: % of allocation requests served from the
 * per-CPU object cache, per (benchmark, slab cache), SLUB vs
 * Prudence. Paper: Prudence improves cache hits for every reported
 * cache (latent merging makes deferred objects available right after
 * the grace period).
 */
#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    prudence_bench::print_banner(
        "Figure 7: allocation requests served from the object cache",
        "Prudence improves hit rate for every reported slab cache");
    auto cmps =
        prudence::run_paper_suite(prudence_bench::suite_config(scale));
    prudence::print_fig7_cache_hits(
        std::cout, cmps, prudence_bench::report_options(scale));
    if (trace_session.active())
        prudence::print_latency_histograms(std::cout, cmps);
    return 0;
}

/**
 * @file
 * Figure 13 reproduction: overall benchmark throughput improvement of
 * Prudence over SLUB. Paper: Postmark +18%, Netperf +4.2%, Apache
 * +5.6%, PostgreSQL +4.6% (high variance on PostgreSQL). The win
 * scales with each benchmark's deferred-free share (Fig. 12).
 */
#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    auto cfg = prudence_bench::suite_config(scale);
    cfg.repetitions = 3;  // paper: average of three runs
    prudence_bench::print_banner(
        "Figure 13: overall throughput improvement over SLUB",
        "Postmark +18%, Netperf +4.2%, Apache +5.6%, PostgreSQL "
        "+4.6%");
    auto cmps = prudence::run_paper_suite(cfg);
    prudence::print_fig13_throughput(std::cout, cmps);
    if (trace_session.active())
        prudence::print_latency_histograms(std::cout, cmps);
    return 0;
}

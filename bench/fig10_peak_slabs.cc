/**
 * @file
 * Figure 10 reproduction: peak slab usage (max slabs simultaneously
 * allocated) per (benchmark, slab cache). Paper: Prudence reduces
 * peaks 2.5%-30.6% or holds within ±2% (Netperf filp 2060 -> 1429;
 * Apache kmalloc-64 +5% is the exception).
 */
#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    prudence_bench::print_banner(
        "Figure 10: peak slab usage",
        "Prudence -2.5%..-30.6% or within +-2%; Netperf filp "
        "2060 -> 1429");
    auto cmps =
        prudence::run_paper_suite(prudence_bench::suite_config(scale));
    prudence::print_fig10_peak_slabs(
        std::cout, cmps, prudence_bench::report_options(scale));
    if (trace_session.active())
        prudence::print_latency_histograms(std::cout, cmps);
    return 0;
}

/**
 * @file
 * Figure 11 reproduction: total fragmentation (allocated/requested
 * memory) measured after each run completes. Paper: Prudence reduces
 * fragmentation 7%-33% or holds within ±2% (Netperf filp +8.7% is
 * the trade-off of scanning only 10 partial slabs at refill).
 */
#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    prudence_bench::print_banner(
        "Figure 11: total fragmentation after the run",
        "Prudence -7%..-33% or within +-2%; Netperf filp +8.7%");
    auto cmps =
        prudence::run_paper_suite(prudence_bench::suite_config(scale));
    prudence::print_fig11_fragmentation(
        std::cout, cmps, prudence_bench::report_options(scale));
    if (trace_session.active())
        prudence::print_latency_histograms(std::cout, cmps);
    return 0;
}

/**
 * @file
 * Shared plumbing for the figure-reproduction binaries.
 *
 * Every fig* binary accepts an optional scale argument (argv[1],
 * default 1.0) multiplying the workload op counts, so quick smoke
 * runs and full runs use the same code. `for b in build/bench/*`
 * style batch runs can export PRUDENCE_BENCH_SCALE instead.
 */
#ifndef PRUDENCE_BENCH_BENCH_COMMON_H
#define PRUDENCE_BENCH_BENCH_COMMON_H

#include <cstdlib>
#include <iostream>
#include <string>

#include "workload/report.h"
#include "workload/suite.h"

namespace prudence_bench {

/// Parse the run scale from argv[1] or PRUDENCE_BENCH_SCALE.
inline double
run_scale(int argc, char** argv, double fallback = 1.0)
{
    if (argc > 1)
        return std::atof(argv[1]);
    if (const char* env = std::getenv("PRUDENCE_BENCH_SCALE"))
        return std::atof(env);
    return fallback;
}

/// Suite configuration shared by the per-figure binaries.
inline prudence::SuiteConfig
suite_config(double scale)
{
    prudence::SuiteConfig cfg;
    cfg.scale = scale;
    cfg.cpus = 8;
    cfg.repetitions = 1;
    return cfg;
}

/// Threshold scaled with the run size (paper: 1M-event caches at
/// full kernel scale).
inline prudence::ReportOptions
report_options(double scale)
{
    prudence::ReportOptions opts;
    opts.min_cache_traffic =
        static_cast<std::uint64_t>(50000.0 * scale);
    if (opts.min_cache_traffic < 100)
        opts.min_cache_traffic = 100;
    return opts;
}

inline void
print_banner(const char* figure, const char* paper_summary)
{
    std::cout << "# " << figure << "\n";
    std::cout << "# Paper reports: " << paper_summary << "\n";
    std::cout << "# (shape reproduction: direction and rough factor, "
                 "not absolute kernel numbers)\n";
}

}  // namespace prudence_bench

#endif  // PRUDENCE_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared plumbing for the figure-reproduction binaries.
 *
 * Every fig* binary accepts an optional scale argument (the first
 * non-flag argument, default 1.0) multiplying the workload op counts,
 * so quick smoke runs and full runs use the same code. Batch runs
 * over all binaries can export PRUDENCE_BENCH_SCALE instead.
 * Passing `--trace=<file>` records a trace session over the
 * run and writes Chrome/Perfetto trace JSON to <file> (plus registry
 * metrics to <file>.metrics.json) at exit.
 */
#ifndef PRUDENCE_BENCH_BENCH_COMMON_H
#define PRUDENCE_BENCH_BENCH_COMMON_H

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "telemetry/monitor.h"
#include "trace/exporter.h"
#include "trace/tracer.h"
#include "workload/report.h"
#include "workload/suite.h"

namespace prudence_bench {

/// Parse the run scale from the first non-flag argument or
/// PRUDENCE_BENCH_SCALE (flags like --trace=... may appear anywhere).
inline double
run_scale(int argc, char** argv, double fallback = 1.0)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            return std::atof(argv[i]);
    }
    if (const char* env = std::getenv("PRUDENCE_BENCH_SCALE"))
        return std::atof(env);
    return fallback;
}

/// Value of --trace=<file>, or empty when tracing was not requested.
inline std::string
trace_path(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace=", 8) == 0)
            return std::string(argv[i] + 8);
    }
    if (const char* env = std::getenv("PRUDENCE_BENCH_TRACE"))
        return std::string(env);
    return {};
}

/**
 * RAII trace session for a bench main: starts tracing when a
 * `--trace=<file>` argument is present and, at scope exit, stops
 * tracing and writes the merged Chrome trace plus the metrics JSON.
 * With no flag (or a PRUDENCE_TRACE=OFF build) it does nothing.
 */
class TraceSession
{
  public:
    TraceSession(int argc, char** argv) : path_(trace_path(argc, argv))
    {
#if defined(PRUDENCE_TRACE_ENABLED)
        if (!path_.empty())
            prudence::trace::start();
#else
        if (!path_.empty()) {
            std::cerr << "--trace ignored: binary built with "
                         "PRUDENCE_TRACE=OFF\n";
            path_.clear();
        }
#endif
    }

    ~TraceSession()
    {
        if (path_.empty())
            return;
        prudence::trace::stop();
        if (!prudence::trace::export_trace_files(path_)) {
            std::cerr << "failed to write trace to " << path_ << "\n";
            return;
        }
        std::cout << "\ntrace: " << path_ << " ("
                  << prudence::trace::total_recorded() << " events, "
                  << prudence::trace::total_dropped()
                  << " dropped; load in ui.perfetto.dev)\n"
                  << "metrics: " << path_ << ".metrics.json\n";
    }

    TraceSession(const TraceSession&) = delete;
    TraceSession& operator=(const TraceSession&) = delete;

    bool active() const { return !path_.empty(); }

  private:
    std::string path_;
};

/// Numeric environment override (run_bench.sh A/B knobs), or
/// @p fallback when unset.
inline std::size_t
size_env(const char* name, std::size_t fallback)
{
    if (const char* env = std::getenv(name))
        return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    return fallback;
}

/// Value of --telemetry=<file>, or empty when not requested.
inline std::string
telemetry_path(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--telemetry=", 12) == 0)
            return std::string(argv[i] + 12);
    }
    if (const char* env = std::getenv("PRUDENCE_BENCH_TELEMETRY"))
        return std::string(env);
    return {};
}

/**
 * RAII telemetry session for a bench main (DESIGN.md §12): with a
 * `--telemetry=<file>` argument it runs a background Monitor over the
 * whole run — process RSS plus the registry-derived age/section
 * probes are registered up front; benches register per-phase
 * allocator/domain probes against monitor(). At scope exit it writes
 * the structured time-series JSON to <file> and CSV to <file>.csv,
 * and installs the series as Chrome counter tracks so a TraceSession
 * declared BEFORE this object (destroyed after it) exports them
 * alongside the event tracks.
 *
 * Sampling period: 10 ms (the paper's memory timeline), overridable
 * via PRUDENCE_TELEMETRY_PERIOD_US. With no flag (or a
 * PRUDENCE_TELEMETRY=OFF build) it does nothing and monitor()
 * returns nullptr.
 */
class TelemetrySession
{
  public:
    TelemetrySession(int argc, char** argv)
        : path_(telemetry_path(argc, argv))
    {
        if (path_.empty())
            return;
#if defined(PRUDENCE_TELEMETRY_ENABLED)
        prudence::telemetry::MonitorConfig cfg;
        cfg.period = std::chrono::microseconds(
            size_env("PRUDENCE_TELEMETRY_PERIOD_US", 10'000));
        monitor_ =
            std::make_unique<prudence::telemetry::Monitor>(cfg);
        group_ = std::make_unique<prudence::telemetry::ProbeGroup>(
            *monitor_);
        prudence::telemetry::add_rss_probe(*group_);
        prudence::telemetry::add_registry_probes(*group_);
        monitor_->start();
#else
        std::cerr << "--telemetry ignored: binary built with "
                     "PRUDENCE_TELEMETRY=OFF\n";
        path_.clear();
#endif
    }

    ~TelemetrySession()
    {
        if (monitor_ == nullptr)
            return;
        monitor_->stop();
        // Counter tracks for a --trace export that happens after this
        // destructor (TraceSession is declared first in bench mains,
        // so it is destroyed last). Snapshot by value: the exporter
        // must not dangle into this dying monitor.
        prudence::telemetry::install_chrome_counter_export(
            monitor_->snapshot());
        std::ofstream json(path_);
        if (json)
            monitor_->write_json(json);
        std::ofstream csv(path_ + ".csv");
        if (csv)
            monitor_->write_csv(csv);
        if (json && csv) {
            std::cout << "\ntelemetry: " << path_ << " (JSON), "
                      << path_ << ".csv (" << monitor_->rounds()
                      << " sampling rounds)\n";
        } else {
            std::cerr << "failed to write telemetry to " << path_
                      << "\n";
        }
    }

    TelemetrySession(const TelemetrySession&) = delete;
    TelemetrySession& operator=(const TelemetrySession&) = delete;

    /// The running monitor, or nullptr when telemetry is off.
    prudence::telemetry::Monitor* monitor() { return monitor_.get(); }
    bool active() const { return monitor_ != nullptr; }

  private:
    std::string path_;
    std::unique_ptr<prudence::telemetry::Monitor> monitor_;
    std::unique_ptr<prudence::telemetry::ProbeGroup> group_;
};

/// PRUDENCE_MAGAZINE_CAPACITY override (run_bench.sh A/B knob), or
/// @p fallback when unset.
inline std::size_t
magazine_capacity_env(std::size_t fallback)
{
    return size_env("PRUDENCE_MAGAZINE_CAPACITY", fallback);
}

/// PRUDENCE_LOCKFREE_PCPU override (run_bench.sh on/off knob for the
/// lock-free per-CPU layer, DESIGN.md §14), or @p fallback when
/// unset.
inline bool
lockfree_pcpu_env(bool fallback)
{
    return size_env("PRUDENCE_LOCKFREE_PCPU", fallback ? 1 : 0) != 0;
}

/// Suite configuration shared by the per-figure binaries.
inline prudence::SuiteConfig
suite_config(double scale)
{
    prudence::SuiteConfig cfg;
    cfg.scale = scale;
    cfg.cpus = 8;
    cfg.repetitions = 1;
    cfg.magazine_capacity =
        magazine_capacity_env(cfg.magazine_capacity);
    cfg.pcp_high_watermark =
        size_env("PRUDENCE_PCP_HIGH_WATERMARK", cfg.pcp_high_watermark);
    cfg.pcp_batch = size_env("PRUDENCE_PCP_BATCH", cfg.pcp_batch);
    cfg.lockfree_pcpu = lockfree_pcpu_env(cfg.lockfree_pcpu);
    return cfg;
}

/// Threshold scaled with the run size (paper: 1M-event caches at
/// full kernel scale).
inline prudence::ReportOptions
report_options(double scale)
{
    prudence::ReportOptions opts;
    opts.min_cache_traffic =
        static_cast<std::uint64_t>(50000.0 * scale);
    if (opts.min_cache_traffic < 100)
        opts.min_cache_traffic = 100;
    return opts;
}

inline void
print_banner(const char* figure, const char* paper_summary)
{
    std::cout << "# " << figure << "\n";
    std::cout << "# Paper reports: " << paper_summary << "\n";
    std::cout << "# (shape reproduction: direction and rough factor, "
                 "not absolute kernel numbers)\n";
}

}  // namespace prudence_bench

#endif  // PRUDENCE_BENCH_BENCH_COMMON_H

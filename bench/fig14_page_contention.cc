/**
 * @file
 * Figure 14 (repo-local experiment): buddy-lock contention under
 * multi-threaded slab grow/shrink churn, with and without the
 * per-CPU page caches (DESIGN.md §10).
 *
 * PR 3 made the object fast path lock-free, which moves the
 * bottleneck down to the page layer: every slab grow/shrink from
 * every CPU serializes on the buddy allocator's one global spinlock.
 * This bench drives that layer directly — N threads continuously
 * allocate and free blocks of the slab-geometry orders (0..3),
 * holding a small working ring so allocs and frees interleave the
 * way slab churn does — and reports, per thread count and per
 * config (PCP on vs off):
 *
 *   ns/op            wall time per alloc+free pair, per thread
 *   lock/op          global buddy-lock acquisitions per operation
 *   hit_rate         fraction of allocs served CPU-locally
 *
 * With PCP on, lock acquisitions collapse by ~pcp_batch× (one
 * global acquisition refills/drains a whole batch); at 8 threads
 * that is also a large wall-clock win because the remaining
 * acquisitions stop queueing behind seven other CPUs.
 *
 * Environment: PRUDENCE_PCP_HIGH_WATERMARK / PRUDENCE_PCP_BATCH
 * override the "on" configuration (defaults 32 / 8).
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "page/buddy_allocator.h"
#include "page/page_types.h"

namespace {

struct RunResult
{
    double ns_per_op = 0.0;
    double lock_per_op = 0.0;
    double hit_rate = 0.0;
};

/// One churn run: @p threads workers, each performing @p ops
/// alloc/free pairs over orders 0..kPcpMaxOrder against a fresh
/// allocator.
RunResult
run_churn(unsigned threads, std::size_t ops, std::size_t watermark,
          std::size_t batch)
{
    prudence::BuddyConfig cfg;
    cfg.capacity_bytes = std::size_t{64} << 20;
    cfg.cpus = threads;
    cfg.pcp_high_watermark = watermark;
    cfg.pcp_batch = batch;
    prudence::BuddyAllocator buddy(cfg);

    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&buddy, &go, ops] {
            while (!go.load(std::memory_order_acquire)) {
            }
            // Small working ring so allocs and frees interleave like
            // slab grow/shrink (a pure alloc-all/free-all loop would
            // let one batch refill serve the whole ring).
            constexpr std::size_t kRing = 16;
            void* ring[kRing] = {};
            unsigned ring_order[kRing] = {};
            for (std::size_t i = 0; i < ops; ++i) {
                std::size_t slot = i % kRing;
                if (ring[slot] != nullptr)
                    buddy.free_pages(ring[slot], ring_order[slot]);
                unsigned order =
                    static_cast<unsigned>(i & prudence::kPcpMaxOrder);
                ring[slot] = buddy.alloc_pages(order);
                ring_order[slot] = order;
            }
            for (std::size_t slot = 0; slot < kRing; ++slot) {
                if (ring[slot] != nullptr)
                    buddy.free_pages(ring[slot], ring_order[slot]);
            }
        });
    }

    auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers)
        w.join();
    auto t1 = std::chrono::steady_clock::now();

    auto s = buddy.stats();
    double total_ops = static_cast<double>(ops) * threads;
    double wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    RunResult r;
    // Per-thread per-op latency: total thread-time / total ops.
    r.ns_per_op = wall_ns * threads / total_ops;
    r.lock_per_op =
        static_cast<double>(s.lock_acquisitions) / total_ops;
    if (s.pcp_hits + s.pcp_misses > 0) {
        r.hit_rate = static_cast<double>(s.pcp_hits) /
                     static_cast<double>(s.pcp_hits + s.pcp_misses);
    }
    return r;
}

}  // namespace

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    std::size_t watermark =
        prudence_bench::size_env("PRUDENCE_PCP_HIGH_WATERMARK", 32);
    std::size_t batch = prudence_bench::size_env("PRUDENCE_PCP_BATCH", 8);
    if (watermark == 0)
        watermark = 32;  // the "off" leg is always run explicitly

    auto ops = static_cast<std::size_t>(200000.0 * scale);
    if (ops < 1000)
        ops = 1000;

    std::printf("# Figure 14: buddy-lock contention, per-CPU page "
                "caches on vs off\n");
    std::printf("# %zu alloc/free pairs per thread, orders 0..%u, "
                "pcp watermark %zu batch %zu\n",
                ops, prudence::kPcpMaxOrder, watermark, batch);
    std::printf("%-8s %-5s %12s %14s %10s\n", "threads", "pcp",
                "ns_per_op", "lock_per_op", "hit_rate");

    double on8_lock = 0.0, off8_lock = 0.0;
    double on8_ns = 0.0, off8_ns = 0.0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        RunResult on = run_churn(threads, ops, watermark, batch);
        RunResult off = run_churn(threads, ops, 0, batch);
        std::printf("%-8u %-5s %12.1f %14.4f %10.3f\n", threads, "on",
                    on.ns_per_op, on.lock_per_op, on.hit_rate);
        std::printf("%-8u %-5s %12.1f %14.4f %10.3f\n", threads, "off",
                    off.ns_per_op, off.lock_per_op, off.hit_rate);
        if (threads == 8) {
            on8_lock = on.lock_per_op;
            off8_lock = off.lock_per_op;
            on8_ns = on.ns_per_op;
            off8_ns = off.ns_per_op;
        }
    }

    if (on8_lock > 0.0 && on8_ns > 0.0) {
        std::printf("# 8 threads: lock acquisitions/op %.4f -> %.4f "
                    "(%.1fx reduction), ns/op %.1f -> %.1f (%.2fx)\n",
                    off8_lock, on8_lock, off8_lock / on8_lock, off8_ns,
                    on8_ns, off8_ns / on8_ns);
    }
    return 0;
}

/**
 * @file
 * §3.3 cost-table reproduction: the relative cost of the three
 * allocation paths. Paper: "the object allocation cost, compared to
 * cache hit, is 4x expensive if it involves object cache refill and
 * 14x expensive if it involves slab cache grow operation."
 *
 * Method: time batches of allocations in three prepared allocator
 * states and separate the slow-path cost using the refill/grow
 * counters (the baseline allocator on a manual grace-period domain,
 * one virtual CPU — no concurrency noise):
 *
 *   hit     — steady alloc/free pairs served from the object cache;
 *   refill  — allocations against partial slabs (no growth);
 *   grow    — allocations against an empty cache (every refill grows).
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "api/allocator_factory.h"
#include "bench_common.h"
#include "rcu/manual_domain.h"
#include "slab/geometry.h"

namespace {

using namespace prudence;

constexpr std::size_t kObjectSize = 512;
constexpr std::size_t kBatch = 200000;

std::unique_ptr<Allocator>
make_alloc(ManualRcuDomain& domain)
{
    SlubConfig cfg;
    cfg.arena_bytes = std::size_t{1} << 30;
    cfg.cpus = 1;
    cfg.callback.background_drainer = false;
    cfg.callback.inline_batch_limit = 0;
    cfg.magazine_capacity = prudence_bench::magazine_capacity_env(
        cfg.magazine_capacity);
    cfg.lockfree_pcpu =
        prudence_bench::lockfree_pcpu_env(cfg.lockfree_pcpu);
    return make_slub_allocator(domain, cfg);
}

struct PathCosts
{
    double hit_ns = 0.0;
    double refill_ns = 0.0;
    double grow_ns = 0.0;
    /// Mean per-allocation cost in each prepared state (the paper's
    /// framing: "the object allocation cost, compared to cache hit").
    double refill_state_mean_ns = 0.0;
    double grow_state_mean_ns = 0.0;
};

/// Time @p n allocations; return (seconds, refills, grows, hits).
struct Measured
{
    double seconds;
    std::uint64_t refills;
    std::uint64_t grows;
    std::uint64_t hits;
    std::vector<void*> objs;
};

Measured
measure_allocs(Allocator& alloc, CacheId id, std::size_t n)
{
    Measured m{};
    m.objs.reserve(n);
    auto before = alloc.cache_snapshot(id);
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
        void* p = alloc.cache_alloc(id);
        benchmark::DoNotOptimize(p);
        m.objs.push_back(p);
    }
    m.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    auto after = alloc.cache_snapshot(id);
    m.refills = after.refills - before.refills;
    m.grows = after.grows - before.grows;
    m.hits = after.cache_hits - before.cache_hits;
    return m;
}

PathCosts
measure_paths()
{
    PathCosts costs;

    // --- hit: steady-state alloc/free pairs. The free side of the
    // pair is symmetric cache work, so half the pair approximates the
    // allocation. ---
    {
        ManualRcuDomain domain;
        auto alloc = make_alloc(domain);
        CacheId id = alloc->create_cache("hit", kObjectSize);
        // Warm the cache.
        void* warm = alloc->cache_alloc(id);
        alloc->cache_free(id, warm);
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < kBatch; ++i) {
            void* p = alloc->cache_alloc(id);
            benchmark::DoNotOptimize(p);
            alloc->cache_free(id, p);
        }
        double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        costs.hit_ns = seconds * 1e9 / static_cast<double>(kBatch) / 2;
    }

    // --- refill: plenty of partial slabs, no growth needed. Keep
    // half of a large population live so freed slabs stay partial
    // rather than draining to the free list. ---
    {
        ManualRcuDomain domain;
        auto alloc = make_alloc(domain);
        CacheId id = alloc->create_cache("refill", kObjectSize);
        std::vector<void*> anchor, returned;
        for (std::size_t i = 0; i < kBatch * 2; ++i) {
            void* p = alloc->cache_alloc(id);
            (i % 2 == 0 ? anchor : returned).push_back(p);
        }
        for (void* p : returned)
            alloc->cache_free(id, p);

        Measured m = measure_allocs(*alloc, id, kBatch);
        double slow = m.seconds * 1e9 -
                      static_cast<double>(m.hits) * costs.hit_ns;
        costs.refill_ns =
            m.refills > 0 ? slow / static_cast<double>(m.refills)
                          : 0.0;
        costs.refill_state_mean_ns =
            m.seconds * 1e9 / static_cast<double>(kBatch);
        std::printf("# refill state: refills=%llu grows=%llu "
                    "hits=%llu\n",
                    static_cast<unsigned long long>(m.refills),
                    static_cast<unsigned long long>(m.grows),
                    static_cast<unsigned long long>(m.hits));
    }

    // --- grow: empty allocator, every refill must grow the slab
    // cache from the page allocator. ---
    {
        ManualRcuDomain domain;
        auto alloc = make_alloc(domain);
        CacheId id = alloc->create_cache("grow", kObjectSize);
        Measured m = measure_allocs(*alloc, id, kBatch);
        double slow = m.seconds * 1e9 -
                      static_cast<double>(m.hits) * costs.hit_ns;
        costs.grow_ns =
            m.refills > 0 ? slow / static_cast<double>(m.refills)
                          : 0.0;
        costs.grow_state_mean_ns =
            m.seconds * 1e9 / static_cast<double>(kBatch);
        std::printf("# grow state: refills=%llu grows=%llu "
                    "hits=%llu\n",
                    static_cast<unsigned long long>(m.refills),
                    static_cast<unsigned long long>(m.grows),
                    static_cast<unsigned long long>(m.hits));
    }
    return costs;
}

/// google-benchmark wrappers so the three paths also appear in the
/// standard benchmark output (ns per allocation, amortized).
void
BM_AllocPath_Hit(benchmark::State& state)
{
    ManualRcuDomain domain;
    auto alloc = make_alloc(domain);
    CacheId id = alloc->create_cache("bm_hit", kObjectSize);
    for (auto _ : state) {
        void* p = alloc->cache_alloc(id);
        benchmark::DoNotOptimize(p);
        alloc->cache_free(id, p);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocPath_Hit);

void
BM_AllocPath_GrowHeavy(benchmark::State& state)
{
    ManualRcuDomain domain;
    auto alloc = make_alloc(domain);
    CacheId id = alloc->create_cache("bm_grow", kObjectSize);
    std::vector<void*> objs;
    objs.reserve(1 << 20);
    for (auto _ : state) {
        void* p = alloc->cache_alloc(id);
        benchmark::DoNotOptimize(p);
        if (p != nullptr)
            objs.push_back(p);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocPath_GrowHeavy)->Iterations(200000);

}  // namespace

int
main(int argc, char** argv)
{
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    std::printf("# Table (paper §3.3): allocation-path cost relative "
                "to an object-cache hit\n");
    std::printf("# Paper reports: refill ~4x, grow ~14x\n");
    PathCosts costs = measure_paths();
    std::printf("\nmean allocation cost by state (paper's framing; "
                "batch effects amortized):\n");
    std::printf("%-28s %12s %10s\n", "state", "ns/alloc", "vs hit");
    std::printf("%-28s %12.1f %9.1fx\n", "object-cache hit",
                costs.hit_ns, 1.0);
    std::printf("%-28s %12.1f %9.1fx\n",
                "refilling from slabs", costs.refill_state_mean_ns,
                costs.hit_ns > 0
                    ? costs.refill_state_mean_ns / costs.hit_ns
                    : 0.0);
    std::printf("%-28s %12.1f %9.1fx\n", "refilling with slab grow",
                costs.grow_state_mean_ns,
                costs.hit_ns > 0
                    ? costs.grow_state_mean_ns / costs.hit_ns
                    : 0.0);
    std::printf("\nisolated slow-path operation cost (one refill "
                "moves a %zu-object batch):\n",
                compute_slab_geometry(kObjectSize).refill_target);
    std::printf("%-28s %12s %10s\n", "operation", "ns/op", "vs hit");
    std::printf("%-28s %12.1f %9.1fx\n", "object-cache refill",
                costs.refill_ns,
                costs.hit_ns > 0 ? costs.refill_ns / costs.hit_ns
                                 : 0.0);
    std::printf("%-28s %12.1f %9.1fx\n", "refill with slab grow",
                costs.grow_ns,
                costs.hit_ns > 0 ? costs.grow_ns / costs.hit_ns : 0.0);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

/**
 * @file
 * Extension experiment: sensitivity of the §5.5 equilibrium to
 * grace-period latency.
 *
 * The paper argues Prudence's steady-state memory equals the deferral
 * flow of roughly one grace period ("Prudence hits equilibrium once
 * the rate at which deferred objects are eligible for reallocation
 * reaches the rate at which objects are allocated"). This bench
 * sweeps the background grace-period interval and reports, for a
 * fixed alloc/defer load, the peak memory and throughput of both
 * allocators — Prudence's footprint should scale with the interval
 * while staying bounded, and the throttled baseline should degrade
 * much faster.
 */
#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "api/allocator_factory.h"
#include "bench/bench_common.h"
#include "rcu/rcu_domain.h"

namespace {

using namespace prudence;

struct Outcome
{
    double pairs_per_second = 0.0;
    std::uint64_t peak_mib = 0;
    std::uint64_t failures = 0;
};

Outcome
run(bool use_prudence, std::chrono::microseconds gp_interval,
    std::uint64_t pairs_per_thread)
{
    RcuConfig rcfg;
    rcfg.gp_interval = gp_interval;
    RcuDomain rcu(rcfg);

    constexpr std::size_t kArena = std::size_t{512} << 20;
    constexpr unsigned kThreads = 4;
    std::unique_ptr<Allocator> alloc;
    if (use_prudence) {
        PrudenceConfig cfg;
        cfg.arena_bytes = kArena;
        cfg.cpus = kThreads;
        alloc = make_prudence_allocator(rcu, cfg);
    } else {
        SlubConfig cfg;
        cfg.arena_bytes = kArena;
        cfg.cpus = kThreads;
        cfg.callback.inline_batch_limit = 100000;
        cfg.callback.batch_limit = 1000;
        alloc = make_slub_allocator(rcu, cfg);
    }
    CacheId id = alloc->create_cache("gp_sweep", 512);

    std::atomic<std::uint64_t> failures{0};
    std::vector<std::thread> threads;
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::uint64_t i = 0; i < pairs_per_thread; ++i) {
                void* p = alloc->cache_alloc(id);
                if (p == nullptr) {
                    failures.fetch_add(1);
                    continue;
                }
                alloc->cache_free_deferred(id, p);
            }
        });
    }
    for (auto& th : threads)
        th.join();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    Outcome out;
    out.pairs_per_second = seconds > 0
        ? static_cast<double>(pairs_per_thread) * kThreads / seconds
        : 0.0;
    out.peak_mib =
        static_cast<std::uint64_t>(
            alloc->page_allocator().stats().peak_pages_in_use) *
        kPageSize >>
        20;
    out.failures = failures.load();
    alloc->quiesce();
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    auto pairs = static_cast<std::uint64_t>(150000.0 * scale);
    if (pairs < 1000)
        pairs = 1000;

    std::cout << "# Extension: grace-period latency sweep (512 B "
                 "alloc+defer pairs, 4 threads)\n";
    std::cout << "# expectation: Prudence peak memory scales with the "
                 "GP interval but stays bounded;\n";
    std::cout << "# throughput degrades gracefully relative to the "
                 "baseline\n";
    std::cout << std::left << std::setw(14) << "gp_interval"
              << std::right << std::setw(16) << "slub pairs/s"
              << std::setw(12) << "slub MiB" << std::setw(16)
              << "prud pairs/s" << std::setw(12) << "prud MiB"
              << std::setw(10) << "speedup" << "\n";

    for (long micros : {100L, 500L, 2000L, 8000L}) {
        auto interval = std::chrono::microseconds{micros};
        Outcome slub = run(false, interval, pairs);
        Outcome prud = run(true, interval, pairs);
        std::cout << std::left << std::setw(14)
                  << (std::to_string(micros) + "us") << std::right
                  << std::fixed << std::setprecision(0)
                  << std::setw(16) << slub.pairs_per_second
                  << std::setw(12) << slub.peak_mib << std::setw(16)
                  << prud.pairs_per_second << std::setw(12)
                  << prud.peak_mib << std::setprecision(2)
                  << std::setw(10)
                  << (slub.pairs_per_second > 0
                          ? prud.pairs_per_second /
                                slub.pairs_per_second
                          : 0.0)
                  << "\n";
        if (slub.failures + prud.failures > 0) {
            std::cout << "# note: alloc failures slub="
                      << slub.failures << " prudence="
                      << prud.failures << "\n";
        }
    }
    return 0;
}

/**
 * @file
 * Figure 12 reproduction: deferred frees as a percentage of all free
 * operations per benchmark — the opportunity Prudence can optimize.
 * Paper: Postmark 24.4%, Netperf 14%, Apache 18%, PostgreSQL 4.4%.
 * This validates the workload models themselves.
 */
#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    prudence_bench::print_banner(
        "Figure 12: deferred frees as % of total frees",
        "Postmark 24.4%, Netperf 14%, Apache 18%, PostgreSQL 4.4%");
    auto cmps =
        prudence::run_paper_suite(prudence_bench::suite_config(scale));
    prudence::print_fig12_deferred_ratio(std::cout, cmps);
    if (trace_session.active())
        prudence::print_latency_histograms(std::cout, cmps);
    return 0;
}

/**
 * @file
 * Figure 15 (repo-local experiment): per-CPU slab-lock contention
 * under multi-threaded object churn, with and without the lock-free
 * per-CPU layer (DESIGN.md §14).
 *
 * The fig14 story one layer up: PR 3 made the object fast path mostly
 * lock-free, PR 6 took the buddy lock out of slab grow/shrink — what
 * remains is the per-CPU spinlock every magazine refill, flush and
 * deferral spill serializes on. The lock-free layer replaces those
 * exchanges with single-CAS depot pushes/pops, so the per-CPU lock
 * should all but vanish from the hot path.
 *
 * N threads churn cache_alloc / cache_free / cache_free_deferred over
 * a shared cache (bursts that cross magazine boundaries, the pattern
 * that forces exchanges), and the bench reports per thread count and
 * per config (lock-free on vs off):
 *
 *   ns_per_op    wall time per operation, per thread
 *   lock_per_op  per-CPU spinlock acquisitions per operation
 *   depot_per_op depot CAS exchanges per operation (0 on the off leg)
 *
 * The paper-facing gate: lock_per_op ~ 0 on the on leg at 8 threads,
 * with ns_per_op no worse at 1 thread and better at 8.
 *
 * Environment: PRUDENCE_MAGAZINE_CAPACITY overrides the magazine
 * depth of both legs (default 32).
 */
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/prudence_allocator.h"
#include "rcu/rcu_domain.h"

namespace {

using namespace prudence;

struct RunResult
{
    double ns_per_op = 0.0;
    double lock_per_op = 0.0;
    double depot_per_op = 0.0;
    // Attributed residual-miss counters (raw sums over caches).
    std::uint64_t miss_cold = 0;
    std::uint64_t miss_gp_pending = 0;
    std::uint64_t prefills = 0;
    std::uint64_t claim_hits = 0;
    std::uint64_t harvests_ahead = 0;
};

/// One churn run: @p threads workers, each performing @p ops
/// operations (alloc-burst / free-burst / defer mix) against a fresh
/// allocator with the lock-free layer @p lockfree. @p defer_heavy
/// inverts the defer mix (75% deferred instead of 25%) — the regime
/// where refills race the prudence window and harvest-ahead earns
/// its keep.
RunResult
run_churn(unsigned threads, std::size_t ops, std::size_t magazines,
          bool lockfree, bool defer_heavy = false)
{
    RcuConfig rcfg;
    rcfg.gp_interval = std::chrono::microseconds{200};
    RcuDomain rcu(rcfg);

    PrudenceConfig cfg;
    cfg.arena_bytes = std::size_t{256} << 20;
    cfg.cpus = threads;
    cfg.magazine_capacity = magazines;
    cfg.lockfree_pcpu = lockfree;
    // Residual-miss mechanism toggles (run_bench.sh 2x2 matrix).
    cfg.depot_blocks = prudence_bench::size_env("PRUDENCE_DEPOT_BLOCKS",
                                                cfg.depot_blocks);
    cfg.harvest_ahead =
        prudence_bench::size_env("PRUDENCE_HARVEST_AHEAD",
                                 cfg.harvest_ahead ? 1 : 0) != 0;
    cfg.depot_prefill_blocks = prudence_bench::size_env(
        "PRUDENCE_DEPOT_PREFILL", cfg.depot_prefill_blocks);
    cfg.depot_claim_blocks = prudence_bench::size_env(
        "PRUDENCE_CLAIM_RING", cfg.depot_claim_blocks);
    PrudenceAllocator alloc(rcu, cfg);
    CacheId cache = alloc.create_cache("fig15.obj", 128);

    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&alloc, &go, cache, ops, t,
                              defer_heavy] {
            while (!go.load(std::memory_order_acquire)) {
            }
            // Bursts sized past the magazine capacity so every round
            // crosses a refill/flush boundary — the exchange paths
            // are the contended ones, not the in-magazine hits.
            constexpr std::size_t kBurst = 48;
            void* held[kBurst] = {};
            std::size_t done = 0;
            unsigned state = t * 2654435761u + 1;
            while (done < ops) {
                for (std::size_t i = 0; i < kBurst && done < ops;
                     ++i, ++done) {
                    held[i] = alloc.cache_alloc(cache);
                    if (held[i] != nullptr)
                        std::memset(held[i], static_cast<int>(t), 8);
                }
                for (std::size_t i = 0; i < kBurst && done < ops;
                     ++i, ++done) {
                    if (held[i] == nullptr)
                        continue;
                    state = state * 1664525u + 1013904223u;
                    bool defer = ((state >> 16) % 4 == 0) != defer_heavy;
                    if (defer)
                        alloc.cache_free_deferred(cache, held[i]);
                    else
                        alloc.cache_free(cache, held[i]);
                    held[i] = nullptr;
                }
            }
            for (void* p : held) {
                if (p != nullptr)
                    alloc.cache_free(cache, p);
            }
            alloc.drain_thread();
        });
    }

    auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers)
        w.join();
    auto t1 = std::chrono::steady_clock::now();

    alloc.quiesce();
    std::uint64_t locks = 0, exchanges = 0;
    RunResult r;
    for (const auto& s : alloc.snapshots()) {
        locks += s.pcpu_lock_acquisitions;
        exchanges += s.depot_exchanges;
        r.miss_cold += s.depot_miss_cold;
        r.miss_gp_pending += s.depot_miss_gp_pending;
        r.prefills += s.depot_prefills;
        r.claim_hits += s.depot_claim_hits;
        r.harvests_ahead += s.depot_harvests_ahead;
    }

    double total_ops = static_cast<double>(ops) * threads;
    double wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    r.ns_per_op = wall_ns * threads / total_ops;
    r.lock_per_op = static_cast<double>(locks) / total_ops;
    r.depot_per_op = static_cast<double>(exchanges) / total_ops;
    return r;
}

}  // namespace

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    std::size_t magazines = prudence_bench::magazine_capacity_env(32);
    if (magazines == 0)
        magazines = 32;  // both legs need magazines to exchange

    auto ops = static_cast<std::size_t>(400000.0 * scale);
    if (ops < 2000)
        ops = 2000;

    std::printf("# Figure 15: per-CPU slab-lock contention, "
                "lock-free layer on vs off\n");
    std::printf("# %zu ops per thread, 128 B objects, magazine "
                "capacity %zu\n",
                ops, magazines);
    std::printf("%-8s %-9s %12s %14s %14s\n", "threads", "lockfree",
                "ns_per_op", "lock_per_op", "depot_per_op");

    double on8_lock = 0.0, off8_lock = 0.0;
    double on8_ns = 0.0, off8_ns = 0.0;
    RunResult on8;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        RunResult on = run_churn(threads, ops, magazines, true);
        RunResult off = run_churn(threads, ops, magazines, false);
        std::printf("%-8u %-9s %12.1f %14.4f %14.4f\n", threads, "on",
                    on.ns_per_op, on.lock_per_op, on.depot_per_op);
        std::printf("%-8u %-9s %12.1f %14.4f %14.4f\n", threads, "off",
                    off.ns_per_op, off.lock_per_op, off.depot_per_op);
        if (threads == 8) {
            on8_lock = on.lock_per_op;
            off8_lock = off.lock_per_op;
            on8_ns = on.ns_per_op;
            off8_ns = off.ns_per_op;
            on8 = on;
        }
    }

    // Deferred-heavy mix (75% cache_free_deferred): the regime where
    // the full stack starves behind open grace periods. The "-heavy"
    // suffix keeps these rows out of the standard-leg parsers.
    RunResult heavy8;
    for (unsigned threads : {1u, 8u}) {
        RunResult on = run_churn(threads, ops, magazines, true,
                                 /*defer_heavy=*/true);
        RunResult off = run_churn(threads, ops, magazines, false,
                                  /*defer_heavy=*/true);
        std::printf("%-8u %-9s %12.1f %14.4f %14.4f\n", threads,
                    "on-heavy", on.ns_per_op, on.lock_per_op,
                    on.depot_per_op);
        std::printf("%-8u %-9s %12.1f %14.4f %14.4f\n", threads,
                    "off-heavy", off.ns_per_op, off.lock_per_op,
                    off.depot_per_op);
        if (threads == 8)
            heavy8 = on;
    }

    if (off8_lock > 0.0 && on8_ns > 0.0) {
        std::printf("# 8 threads: per-CPU lock acquisitions/op %.4f "
                    "-> %.4f, ns/op %.1f -> %.1f (%.2fx)\n",
                    off8_lock, on8_lock, off8_ns, on8_ns,
                    off8_ns / on8_ns);
    }
    std::printf("# 8 threads on: miss_cold=%llu miss_gp_pending=%llu "
                "prefills=%llu claim_hits=%llu harvests_ahead=%llu\n",
                static_cast<unsigned long long>(on8.miss_cold),
                static_cast<unsigned long long>(on8.miss_gp_pending),
                static_cast<unsigned long long>(on8.prefills),
                static_cast<unsigned long long>(on8.claim_hits),
                static_cast<unsigned long long>(on8.harvests_ahead));
    std::printf("# 8 threads on-heavy: miss_cold=%llu "
                "miss_gp_pending=%llu prefills=%llu claim_hits=%llu "
                "harvests_ahead=%llu\n",
                static_cast<unsigned long long>(heavy8.miss_cold),
                static_cast<unsigned long long>(heavy8.miss_gp_pending),
                static_cast<unsigned long long>(heavy8.prefills),
                static_cast<unsigned long long>(heavy8.claim_hits),
                static_cast<unsigned long long>(heavy8.harvests_ahead));
    return 0;
}

/**
 * @file
 * Ablation bench: the individual contribution of each Prudence
 * optimization (DESIGN.md §3.5). Not a paper figure — it quantifies
 * the design choices §4.1/§4.2 claim matter, by disabling them one
 * at a time and re-running (a) the Figure 6 micro loop and (b) the
 * Postmark model.
 */
#include <chrono>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "api/allocator_factory.h"
#include "bench/bench_common.h"
#include "rcu/rcu_domain.h"
#include "workload/benchmarks.h"
#include "workload/engine.h"

namespace {

using namespace prudence;

double
micro_pairs_per_second(const PrudenceConfig& base,
                       std::uint64_t pairs_per_thread)
{
    RcuConfig rcfg;
    rcfg.gp_interval = std::chrono::microseconds{200};
    RcuDomain rcu(rcfg);
    PrudenceConfig cfg = base;
    cfg.arena_bytes = std::size_t{1} << 30;
    cfg.cpus = 8;
    auto alloc = make_prudence_allocator(rcu, cfg);

    std::vector<std::thread> workers;
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < 8; ++t) {
        workers.emplace_back([&alloc, pairs_per_thread] {
            for (std::uint64_t i = 0; i < pairs_per_thread; ++i) {
                void* p = alloc->kmalloc(512);
                if (p != nullptr)
                    alloc->kfree_deferred(p);
            }
        });
    }
    for (auto& w : workers)
        w.join();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    alloc->quiesce();
    return seconds > 0
        ? static_cast<double>(pairs_per_thread) * 8 / seconds
        : 0.0;
}

struct WorkloadNumbers
{
    double ops_per_second = 0.0;
    std::uint64_t object_churns = 0;
    std::uint64_t slab_churns = 0;
};

WorkloadNumbers
postmark_numbers(const PrudenceConfig& base, double scale)
{
    RcuConfig rcfg;
    rcfg.gp_interval = std::chrono::microseconds{200};
    RcuDomain rcu(rcfg);
    PrudenceConfig cfg = base;
    cfg.arena_bytes = std::size_t{1} << 30;
    cfg.cpus = 8;
    auto alloc = make_prudence_allocator(rcu, cfg);
    WorkloadResult r = run_workload(*alloc, postmark_spec(scale), 1);
    WorkloadNumbers n;
    n.ops_per_second = r.ops_per_second;
    for (const auto& s : r.caches) {
        n.object_churns += s.object_cache_churns();
        n.slab_churns += s.slab_churns();
    }
    return n;
}

}  // namespace

int
main(int argc, char** argv)
{
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    auto pairs = static_cast<std::uint64_t>(100000.0 * scale);
    if (pairs < 1000)
        pairs = 1000;
    double wl_scale = 0.3 * scale;

    struct Variant
    {
        const char* name;
        std::function<void(PrudenceConfig&)> tweak;
    };
    const Variant variants[] = {
        {"full (all optimizations)", [](PrudenceConfig&) {}},
        {"-merge_on_alloc",
         [](PrudenceConfig& c) { c.merge_on_alloc = false; }},
        {"-partial_refill",
         [](PrudenceConfig& c) { c.partial_refill = false; }},
        {"-sized_flush",
         [](PrudenceConfig& c) { c.sized_flush = false; }},
        {"-idle_preflush",
         [](PrudenceConfig& c) { c.idle_preflush = false; }},
        {"-slab_premove",
         [](PrudenceConfig& c) { c.slab_premove = false; }},
        {"-hinted_slab_selection",
         [](PrudenceConfig& c) { c.hinted_slab_selection = false; }},
    };

    std::cout << "# Ablation: each Prudence optimization disabled "
                 "individually\n";
    std::cout << "# micro = Fig.6-style 512B kmalloc/kfree_deferred "
                 "pairs/s; postmark = model ops/s + churn pairs\n";
    std::cout << std::left << std::setw(28) << "variant" << std::right
              << std::setw(16) << "micro pairs/s" << std::setw(14)
              << "postmark op/s" << std::setw(12) << "obj churns"
              << std::setw(12) << "slab churns" << "\n";

    for (const Variant& v : variants) {
        PrudenceConfig cfg;
        v.tweak(cfg);
        double micro = micro_pairs_per_second(cfg, pairs);
        WorkloadNumbers wl = postmark_numbers(cfg, wl_scale);
        std::cout << std::left << std::setw(28) << v.name
                  << std::right << std::fixed << std::setprecision(0)
                  << std::setw(16) << micro << std::setw(14)
                  << wl.ops_per_second << std::setw(12)
                  << wl.object_churns << std::setw(12)
                  << wl.slab_churns << "\n";
    }
    std::cout << "# expectation: the full configuration is best or "
                 "tied on every column\n";
    return 0;
}

/**
 * @file
 * Figure 8 reproduction: object-cache churns (refill/flush pairs) per
 * (benchmark, slab cache). Paper: Prudence reduces churns 25.97%-
 * 96.47% — except PostgreSQL kmalloc-64 (+6%), where frees outside
 * the deferred context interfere with Prudence's decisions.
 */
#include <iostream>

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    prudence_bench::print_banner(
        "Figure 8: object-cache churns (refill/flush pairs)",
        "Prudence -25.97%..-96.47%; PostgreSQL kmalloc-64 regresses "
        "(+6%) due to non-deferred frees");
    auto cmps =
        prudence::run_paper_suite(prudence_bench::suite_config(scale));
    prudence::print_fig8_object_churns(
        std::cout, cmps, prudence_bench::report_options(scale));
    if (trace_session.active())
        prudence::print_latency_histograms(std::cout, cmps);
    return 0;
}

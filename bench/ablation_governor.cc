/**
 * @file
 * Governor ablation: static knobs vs. the adaptive reclamation
 * governor (DESIGN.md §13) under bursty defer-heavy churn.
 *
 * Both legs run the identical workload with the identical static
 * configuration — an operator-tuned 20 ms background grace period,
 * sized for steady traffic. The bursty defer storm makes that knob
 * wrong: deferred objects pile up for a full GP interval and the
 * footprint balloons. The governed leg layers the stock scheme list
 * on top: when latent bytes cross the watermark, the governor
 * expedites grace periods (and widens callback batches / shrinks
 * admission under deeper pressure), bounding the pile-up without
 * anyone re-tuning the static knob.
 *
 * Reported per leg: throughput, peak buddy footprint, deferred-age
 * p99 and reader-section p99 (per-leg registry drain), plus the
 * governor's fire/effect counters. The acceptance bar: the governed
 * leg's peak footprint at least 20% below the static leg's, with
 * throughput within noise.
 *
 * Rows are machine-parseable (scripts/run_bench.sh folds them into
 * BENCH_<sha>.json): `leg <name> pairs_s <v> peak_mib <v>
 * defer_p99_ms <v> reader_p99_us <v>`.
 */
#include <atomic>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/prudence_allocator.h"
#include "governor/governor.h"
#include "rcu/rcu_domain.h"
#include "telemetry/monitor.h"
#include "trace/metrics_registry.h"

namespace {

using namespace prudence;

struct Outcome
{
    double pairs_per_second = 0.0;
    std::uint64_t peak_mib = 0;
    double defer_p99_ms = 0.0;
    double reader_p99_us = 0.0;
    std::uint64_t failures = 0;
    governor::GovernorStats gov;
};

double
hist_p99(const std::vector<trace::MetricSnapshot>& metrics,
         const std::string& name)
{
    for (const auto& m : metrics) {
        if (m.name == name &&
            m.kind == trace::MetricSnapshot::Kind::kHistogram)
            return m.hist.p99;
    }
    return 0.0;
}

Outcome
run_leg(bool governed, std::uint64_t bursts_per_thread)
{
    // Per-leg histogram window: drain everything recorded so far so
    // the p99s below belong to this leg alone.
    trace::MetricsRegistry::instance().snapshot_all(/*reset=*/true);

    // The deliberately mis-tuned static knob: a 20 ms background
    // grace period (fine for steady traffic, wrong for bursts).
    RcuConfig rcfg;
    rcfg.gp_interval = std::chrono::milliseconds{20};
    RcuDomain rcu(rcfg);

    constexpr unsigned kThreads = 4;
    PrudenceConfig cfg;
    cfg.arena_bytes = std::size_t{512} << 20;
    cfg.cpus = kThreads;
    PrudenceAllocator alloc(rcu, cfg);
    CacheId id = alloc.create_cache("governor_ablation", 512);

    // Private monitor: the governor's sensor, independent of any
    // --telemetry session. 1 ms sampling so burst onsets are seen
    // promptly.
    telemetry::MonitorConfig mcfg;
    mcfg.period = std::chrono::milliseconds{1};
    telemetry::Monitor monitor(mcfg);
    telemetry::ProbeGroup group(monitor);
    alloc.register_telemetry_probes(group);
    telemetry::add_registry_probes(group);
    monitor.start();

    governor::AllocatorActuators acts(rcu, alloc);
    governor::DefaultSchemeTuning tuning;
    tuning.latent_bytes_high = 2u << 20;  // expedite past 2 MiB latent
    tuning.hold = std::chrono::milliseconds{2};
    tuning.cooldown = std::chrono::milliseconds{10};
    governor::GovernorConfig gcfg;
    gcfg.period = std::chrono::milliseconds{1};
    gcfg.schemes = governor::default_schemes(tuning);
    governor::ReclamationGovernor gov(monitor, acts, gcfg);
    if (governed) {
        alloc.set_pressure_listener(
            [&gov](int rung) { gov.note_oom_ladder(rung); });
        gov.start();
    }

    // Bursty defer-heavy churn at a FIXED offered load: every thread
    // fires a burst on an absolute deadline grid (sleep_until, so a
    // slow leg doesn't quietly shed load), allocates a slug of
    // objects and defers them all. Pacing both legs identically is
    // what makes the peak-footprint comparison meaningful — peak is
    // inflow_rate x reclamation_latency, and only the latency may
    // differ between the legs.
    constexpr std::uint64_t kBurstPairs = 2000;
    constexpr auto kBurstPeriod = std::chrono::milliseconds{8};
    std::atomic<std::uint64_t> failures{0};
    std::vector<std::thread> threads;
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            std::vector<void*> slug;
            slug.reserve(kBurstPairs);
            // Stagger thread phases so bursts overlap but don't
            // align perfectly.
            auto next = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds{t * 2};
            for (std::uint64_t b = 0; b < bursts_per_thread; ++b) {
                std::this_thread::sleep_until(next);
                next += kBurstPeriod;
                for (std::uint64_t i = 0; i < kBurstPairs; ++i) {
                    // A short reader section every few pairs keeps
                    // the reader-duration probe live and makes the
                    // expedited GP actually wait on readers.
                    if ((i & 63) == 0) {
                        RcuReadGuard guard(rcu);
                        void* p = alloc.cache_alloc(id);
                        if (p != nullptr)
                            slug.push_back(p);
                        else
                            failures.fetch_add(1);
                        continue;
                    }
                    void* p = alloc.cache_alloc(id);
                    if (p != nullptr)
                        slug.push_back(p);
                    else
                        failures.fetch_add(1);
                }
                for (void* p : slug)
                    alloc.cache_free_deferred(id, p);
                slug.clear();
                alloc.drain_thread();
            }
        });
    }
    for (auto& th : threads)
        th.join();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    gov.stop();
    monitor.stop();

    Outcome out;
    const std::uint64_t pairs =
        bursts_per_thread * kBurstPairs * kThreads;
    out.pairs_per_second =
        seconds > 0 ? static_cast<double>(pairs) / seconds : 0.0;
    out.peak_mib =
        static_cast<std::uint64_t>(
            alloc.page_allocator().stats().peak_pages_in_use) *
            kPageSize >>
        20;
    auto metrics =
        trace::MetricsRegistry::instance().snapshot_all(false);
    out.defer_p99_ms =
        hist_p99(metrics, "alloc.deferred_age_ns") / 1e6;
    out.reader_p99_us =
        hist_p99(metrics, "rcu.reader_section_ns") / 1e3;
    out.failures = failures.load();
    out.gov = gov.stats();
    alloc.quiesce();
    return out;
}

void
print_row(const char* leg, const Outcome& o)
{
    std::cout << "leg " << std::left << std::setw(10) << leg
              << std::right << std::fixed << " pairs_s "
              << std::setprecision(0) << std::setw(10)
              << o.pairs_per_second << " peak_mib " << std::setw(6)
              << o.peak_mib << " defer_p99_ms " << std::setprecision(2)
              << std::setw(8) << o.defer_p99_ms << " reader_p99_us "
              << std::setw(8) << o.reader_p99_us << "\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    prudence_bench::TraceSession trace_session(argc, argv);
    prudence_bench::TelemetrySession telemetry_session(argc, argv);
    double scale = prudence_bench::run_scale(argc, argv);
    auto bursts = static_cast<std::uint64_t>(60.0 * scale);
    if (bursts < 5)
        bursts = 5;

    std::cout << "# Governor ablation: static knobs vs. adaptive "
                 "reclamation governor\n"
                 "# identical workload + identical static config "
                 "(20 ms GP); the governed leg adds\n"
                 "# the stock scheme list (expedite on latent bytes, "
                 "widen batches on deferred age,\n"
                 "# shrink admission + trim PCP on low headroom)\n"
                 "# expectation: governed peak footprint >= 20% below "
                 "static, throughput within noise\n";
#if !defined(PRUDENCE_GOVERNOR_ENABLED)
    std::cout << "# note: built with PRUDENCE_GOVERNOR=OFF - the "
                 "governed leg degenerates to static\n";
#endif

    Outcome stat = run_leg(/*governed=*/false, bursts);
    Outcome gov = run_leg(/*governed=*/true, bursts);

    print_row("static", stat);
    print_row("governed", gov);

    const double reduction =
        stat.peak_mib > 0
            ? 100.0 *
                  (1.0 - static_cast<double>(gov.peak_mib) /
                             static_cast<double>(stat.peak_mib))
            : 0.0;
    std::cout << "# governed peak " << std::fixed
              << std::setprecision(1) << reduction
              << "% below static\n";
    std::cout << "# governor: evaluations=" << gov.gov.evaluations
              << " fires=" << gov.gov.fires
              << " effects=" << gov.gov.effects
              << " refusals=" << gov.gov.refusals
              << " level_transitions=" << gov.gov.level_transitions
              << "\n";
    if (stat.failures + gov.failures > 0) {
        std::cout << "# note: alloc failures static=" << stat.failures
                  << " governed=" << gov.failures << "\n";
    }
    return 0;
}
